"""The WSQ engine facade."""

from contextlib import nullcontext

from repro.asynciter.context import AsyncContext
from repro.asynciter.pump import RequestPump, default_pump
from repro.asynciter.rewrite import RewriteSettings, rewrite_logical
from repro.exec.operator import execute_batches
from repro.obs import Observability
from repro.obs.trace import BEGIN, END, QUERY_SPAN, Tracer
from repro.plan import logical as logical_ir
from repro.plan.physical import ExecOptions, lower
from repro.plan.planner import Planner, PlannerOptions
from repro.plan.rules import default_rules, parse_rules_spec
from repro.relational.batch import default_batch_layout, default_batch_size
from repro.relational.expr import kernel_stats
from repro.sql import ast
from repro.sql.parser import parse, parse_select
from repro.storage.database import Database
from repro.util.errors import PlanError
from repro.util.timing import resolve_clock
from repro.vtables.evscan import EVScan
from repro.vtables.webcount import WebCountDef
from repro.vtables.webfetch import WebFetchDef, WebLinksDef
from repro.vtables.webpages import WebPagesDef
from repro.exec.exchange import default_parallelism
from repro.web.cache import cache_from_env
from repro.web.client import SearchClient
from repro.web.shardclient import ShardedSearchClient
from repro.web.sharding import default_shards, sharded_view
from repro.web.world import default_web
from repro.wsq.result import QueryResult

SYNC = "sync"
ASYNC = "async"
AUTO = "auto"


class WsqEngine:
    """A WSQ instance: local database + Web search virtual tables.

    Parameters
    ----------
    database:
        The local :class:`~repro.storage.database.Database` (a fresh
        in-memory one by default).
    web:
        A :class:`~repro.web.world.SimulatedWeb`; defaults to the shared
        calibrated instance.
    latency:
        A :class:`~repro.web.latency.LatencyModel` applied to every
        search/fetch (``None`` = instantaneous, for tests).
    cache:
        Optional :class:`~repro.web.cache.ResultCache`, shared by the
        sync and async paths.
    pump:
        A :class:`~repro.asynciter.pump.RequestPump` (defaults to the
        process-wide one).
    planner_options / rewrite_settings:
        Pass-through knobs for planning and ReqSync placement.
    obs:
        An :class:`~repro.obs.Observability` bundle.  With one attached
        (e.g. ``Observability.enabled()``), every query is traced —
        request lifecycle, ReqSync activity, query spans — and the
        engine gets a *dedicated* pump wired to the bundle's tracer,
        metrics registry, and clock (attaching a tracer to the shared
        process-wide pump would trace every other engine too).  Without
        one, tracing is off and only the pump's always-on metrics run.

    For every engine name ``E`` the catalog has ``WebCount_E`` and
    ``WebPages_E``; the first engine (alphabetically) also provides plain
    ``WebCount``/``WebPages``.  ``WebFetch``/``WebLinks`` cover the
    crawler scenario.
    """

    def __init__(
        self,
        database=None,
        web=None,
        latency=None,
        cache=None,
        pump=None,
        planner_options=None,
        rewrite_settings=None,
        dedup_calls=True,
        cost_model=None,
        faults=None,
        resilience=None,
        on_error=None,
        obs=None,
        batch_size=None,
        batch_layout=None,
        single_flight=None,
        calibration=None,
        shards=None,
        parallelism=None,
        rules=None,
    ):
        self.database = database if database is not None else Database()
        self.web = web if web is not None else default_web()
        self.latency = latency
        # Cache resolution: an explicit cache wins; ``None`` consults the
        # ``REPRO_CACHE`` environment (the CI transparency leg forces a
        # default cache into every engine this way); ``False`` forces the
        # cache off even under the env override.
        if cache is None:
            cache = cache_from_env()
        elif cache is False:
            cache = None
        self.cache = cache
        self.faults = faults
        self.resilience = resilience
        self.obs = obs
        self.clock = resolve_clock(obs.clock if obs is not None else None)
        self.on_error = on_error if on_error is not None else "raise"
        if pump is None:
            if resilience is not None or obs is not None or single_flight:
                # A resilient, observed, or single-flight engine gets its
                # own pump: attaching the policy/tracer/coalescing to the
                # shared default pump would change every other engine in
                # the process.
                pump = RequestPump(
                    name="reqpump-engine",
                    resilience=resilience,
                    tracer=obs.tracer if obs is not None else None,
                    metrics=obs.metrics if obs is not None else None,
                    clock=self.clock,
                    single_flight=(
                        single_flight if single_flight is not None else True
                    ),
                )
            else:
                pump = default_pump()
        else:
            if resilience is not None:
                pump.resilience = resilience
            if obs is not None:
                pump.tracer = obs.tracer
            if single_flight is not None:
                pump.single_flight = bool(single_flight)
        self.pump = pump
        # Re-bind the cache's counters/trace onto the engine's
        # observability bundle, so ``cache.stats()`` and
        # ``metrics_snapshot()`` read the same storage and cache events
        # land in the validated trace.  Only a *dedicated* registry is
        # safe to share — migrating counters into the process-wide default
        # pump's registry would mix every engine's caches together.
        if obs is not None and self.cache is not None:
            attach = getattr(self.cache, "attach_observability", None)
            if attach is not None:
                attach(metrics=obs.metrics, tracer=obs.tracer)
        self.dedup_calls = dedup_calls
        self.cost_model = cost_model
        self.planner_options = planner_options or PlannerOptions()
        self.rewrite_settings = rewrite_settings or RewriteSettings()
        if on_error is not None:
            self.planner_options.on_error = on_error
            self.rewrite_settings.on_error = on_error
        #: Batch granularity every plan is stamped with and driven at.
        #: ``1`` degenerates to the exact row-at-a-time schedule (also
        #: reachable process-wide via ``REPRO_BATCH_SIZE=1``).
        if batch_size is None:
            batch_size = self.rewrite_settings.batch_size
        if batch_size is None:
            batch_size = self.planner_options.batch_size
        self.batch_size = (
            batch_size if batch_size is not None else default_batch_size()
        )
        if self.rewrite_settings.batch_size is None:
            self.rewrite_settings.batch_size = self.batch_size
        #: Batch container every plan is stamped with: ``"columnar"``
        #: (the default — column-vector batches driven by compiled
        #: column-at-a-time kernels) or ``"row"`` (the historical
        #: row-of-tuples pipeline, also reachable process-wide via
        #: ``REPRO_BATCH_LAYOUT=row``).  Semantically invisible.
        if batch_layout is None:
            batch_layout = self.rewrite_settings.batch_layout
        if batch_layout is None:
            batch_layout = self.planner_options.batch_layout
        self.batch_layout = (
            batch_layout if batch_layout is not None else default_batch_layout()
        )
        if self.rewrite_settings.batch_layout is None:
            self.rewrite_settings.batch_layout = self.batch_layout
        #: Search-tier shard count.  ``1`` (the default) keeps the plain
        #: unsharded :class:`SearchClient` — plans, traces, and results
        #: are byte-identical to the pre-sharding engine.  ``> 1`` puts a
        #: :class:`~repro.web.shardclient.ShardedSearchClient` broker in
        #: front of each engine (also reachable process-wide via
        #: ``REPRO_SHARDS``).
        if shards is None:
            shards = self.rewrite_settings.shards
        if shards is None:
            shards = self.planner_options.shards
        self.shards = shards if shards is not None else default_shards()
        if self.rewrite_settings.shards is None:
            self.rewrite_settings.shards = self.shards
        #: Intra-query Exchange parallelism for local scan pipelines
        #: (``REPRO_PARALLELISM``); ``1`` lowers byte-identical plans.
        if parallelism is None:
            parallelism = self.rewrite_settings.parallelism
        if parallelism is None:
            parallelism = self.planner_options.parallelism
        self.parallelism = (
            parallelism if parallelism is not None else default_parallelism()
        )
        if self.rewrite_settings.parallelism is None:
            self.rewrite_settings.parallelism = self.parallelism
        #: Opt-in logical rewrite packs (GOLD-style cost-gated rewrites;
        #: see :data:`repro.plan.rules.PACKS`).  A comma-separated string
        #: (``"or_to_union,early_filter"`` or ``"all"``), a sequence of
        #: pack names / Rule classes / Rule instances, or ``None`` to
        #: defer: ``rewrite_settings.rules``, then
        #: ``planner_options.logical_rules``, then ``$REPRO_RULES``.
        #: Empty (the default) keeps the seed pipeline's exact plan
        #: shapes.
        if isinstance(rules, str):
            rules = parse_rules_spec(rules)
        if rules is None:
            rules = self.rewrite_settings.rules
            if isinstance(rules, str):
                rules = parse_rules_spec(rules)
        if rules is None and self.planner_options.logical_rules:
            rules = self.planner_options.logical_rules
        self.rules = tuple(rules) if rules is not None else default_rules()
        if self.rewrite_settings.rules is None:
            self.rewrite_settings.rules = self.rules
        self.planner_options.logical_rules = tuple(self.rules)
        # Calibration: a CalibrationProfile (or a path to a persisted
        # one) re-prices the cost model from *measured* figures at
        # construction; ``recalibrate()`` does the same from live
        # observability at any later point.  (After knob resolution, so
        # the default model prices the resolved shard count.)
        if calibration is not None:
            from repro.obs.calibration import CalibrationProfile

            if isinstance(calibration, str):
                calibration = CalibrationProfile.load(calibration)
            self._ensure_cost_model().apply_profile(calibration)
        self.clients = {
            name: self._build_client(name)
            for name in self.web.engine_names()
        }
        self.fetch_service = self.web.fetch_service(latency=latency, cache=cache)
        self.vtables = self._build_catalog()
        self._planner = Planner(
            self.database, self.vtables, options=self.planner_options
        )
        self._fallback_query_ids = 0

    def _build_client(self, engine_name):
        """The web client for one engine: sharded broker or monolith."""
        engine = self.web.engine(engine_name)
        if self.shards > 1:
            return ShardedSearchClient(
                sharded_view(engine, self.shards),
                latency=self.latency,
                cache=self.cache,
                faults=self.faults,
                resilience=self.resilience,
                obs=self.obs,
            )
        return SearchClient(
            engine,
            latency=self.latency,
            cache=self.cache,
            faults=self.faults,
            resilience=self.resilience,
            obs=self.obs,
        )

    def _build_catalog(self):
        catalog = {}
        names = sorted(self.clients)
        for engine_name in names:
            client = self.clients[engine_name]
            catalog["WebCount_{}".format(engine_name)] = WebCountDef(
                "WebCount_{}".format(engine_name), client
            )
            catalog["WebPages_{}".format(engine_name)] = WebPagesDef(
                "WebPages_{}".format(engine_name), client
            )
        default_client = self.clients[names[0]]
        catalog["WebCount"] = WebCountDef("WebCount", default_client)
        catalog["WebPages"] = WebPagesDef("WebPages", default_client)
        catalog["WebFetch"] = WebFetchDef("WebFetch", self.fetch_service)
        catalog["WebLinks"] = WebLinksDef("WebLinks", self.fetch_service)
        return catalog

    # -- observability ---------------------------------------------------------

    @property
    def tracer(self):
        """The engine's tracer, or None when tracing is disabled."""
        return self.obs.tracer if self.obs is not None else None

    @property
    def metrics(self):
        """The request-metrics registry (the pump's backing store)."""
        return self.pump.metrics

    def _next_query_id(self, tracer):
        if tracer is not None:
            return tracer.next_query_id()
        self._fallback_query_ids += 1
        return self._fallback_query_ids - 1

    def _instrument_plan(self, plan, tracer, query_id):
        """Attach tracer/metrics/query-id to the plan's sync-path scans.

        The async path is correlated through :class:`AsyncContext`; the
        sequential :class:`EVScan` has no context, so the engine walks
        the plan and hands each scan the same handles.
        """
        if isinstance(plan, EVScan):
            plan.attach_observability(
                tracer=tracer,
                metrics=self.pump.metrics,
                query_id=query_id,
                clock=self.clock,
            )
        inner = getattr(plan, "inner", None)
        if inner is not None:
            self._instrument_plan(inner, tracer, query_id)
        for child in plan.children:
            self._instrument_plan(child, tracer, query_id)

    # -- planning -----------------------------------------------------------------

    def exec_options(self, deadline=None):
        """The consolidated :class:`~repro.plan.physical.ExecOptions`.

        One resolution point for the historical ``on_error`` /
        ``batch_size`` / ``wait_timeout`` knob triplet across
        ``PlannerOptions``, ``RewriteSettings``, and the engine — the
        sync and async paths lower with the same struct.  *deadline* is
        the per-query budget stamped over the lowered plan.
        """
        return ExecOptions.from_knobs(
            planner_options=self.planner_options,
            rewrite_settings=self.rewrite_settings,
            batch_size=self.batch_size,
            batch_layout=self.batch_layout,
            cache=self.cache,
            deadline=deadline,
            shards=self.shards,
            parallelism=self.parallelism,
        )

    def _pipeline(self, query, mode, tracer, query_id=None, deadline=None):
        """The three-layer pipeline: build -> rules -> lower.

        Returns ``(plan, logical, firings, mode, query_id)`` where
        *logical* is the optimized logical tree the physical *plan* was
        lowered from and *firings* lists every optimizer-rule
        application (opt-in packs + ReqSync placement).
        """
        metrics = self.pump.metrics
        logical = self._planner.plan_logical(query)
        logical, firings = self._planner.optimize(
            logical,
            tracer=tracer,
            metrics=metrics,
            query_id=query_id,
            cost_model=self.cost_model,
        )
        mode = self._resolve_mode(logical, mode)
        context = None
        if mode == ASYNC:
            if query_id is None:
                query_id = self._next_query_id(tracer)
            context = AsyncContext(
                self.pump,
                dedup=self.dedup_calls,
                tracer=tracer,
                query_id=query_id,
                deadline=deadline,
            )
            logical, placement = rewrite_logical(
                logical,
                self.rewrite_settings,
                tracer=tracer,
                metrics=metrics,
                query_id=query_id,
            )
            firings = firings + placement
        plan = lower(logical, self.exec_options(deadline=deadline), context)
        return plan, logical, firings, mode, query_id

    def plan(self, sql, mode=ASYNC):
        """Build (and for async mode, rewrite) the plan for *sql*.

        ``mode="auto"`` applies asynchronous iteration exactly when the
        plan contains external virtual-table scans (optionally arbitrated
        by a :class:`~repro.plan.cost.CostModel` passed as
        ``self.cost_model``): local-only queries skip the rewrite.
        """
        query = parse_select(sql)
        plan, _, _, _, _ = self._pipeline(query, mode, self.tracer)
        return plan

    def _resolve_mode(self, logical, mode):
        """Resolve ``auto`` against the (still-synchronous) logical plan.

        Local-only queries stay sequential — the rewrite buys nothing and
        the ReqSync machinery is pure overhead.  Plans with external scans
        go asynchronous; with a :class:`~repro.plan.cost.CostModel`
        attached, only when the model expects the rewrite to pay off
        (it essentially always does once a call exists, but a zero-latency
        model with per-call overhead can disagree).
        """
        if mode in (SYNC, ASYNC):
            return mode
        if mode != AUTO:
            raise PlanError("unknown execution mode {!r}".format(mode))
        if not logical_ir.contains_external_scan(logical):
            return SYNC
        if self.cost_model is not None:
            sync_plan = lower(logical, self.exec_options())
            sync_estimate = self.cost_model.estimate(sync_plan)
            sync_seconds = self.cost_model.seconds(sync_plan)
            # Model the consolidated rewrite without building it: the same
            # calls collapse into one blocking wave plus patch work.
            async_seconds = (
                sync_seconds
                - sync_estimate.waves * self.cost_model.latency_mean
                + 1.0 * self.cost_model.latency_mean
                + sync_estimate.rows * self.cost_model.cpu_per_patch
            )
            return ASYNC if async_seconds < sync_seconds else SYNC
        return ASYNC

    EXPLAIN_FORMS = ("logical", "optimized", "physical", "rules", "costs")

    def explain(self, sql, mode=ASYNC, form="physical"):
        """The plan as text, at any layer of the planning stack.

        ``form``:

        - ``"physical"`` (default): the lowered operator tree — the
          historical Figure-2/3 style output.
        - ``"logical"``: the algebra tree straight out of the planner,
          before any rule runs.
        - ``"optimized"``: the logical tree after the configured rule
          packs and (for async mode) ReqSync placement.
        - ``"rules"``: one line per fired optimizer rule with
          before/after node counts.
        - ``"costs"``: the physical form with a per-operator cost column
          (uses ``self.cost_model`` or a default
          :class:`~repro.plan.cost.CostModel`).
        """
        query = parse_select(sql)
        if form == "logical":
            return logical_ir.render(self._planner.plan_logical(query))
        if form not in self.EXPLAIN_FORMS:
            raise PlanError(
                "unknown explain form {!r}; expected one of {}".format(
                    form, "/".join(self.EXPLAIN_FORMS)
                )
            )
        plan, logical, firings, mode, _ = self._pipeline(
            query, mode, self.tracer
        )
        if form == "optimized":
            return logical_ir.render(logical)
        if form == "rules":
            if not firings:
                return "(no rules fired)"
            width = max(len(f.rule) for f in firings)
            return "\n".join(
                "{:<{width}}  nodes {} -> {}".format(
                    f.rule, f.before_nodes, f.after_nodes, width=width
                )
                for f in firings
            )
        if form == "costs":
            model = self.cost_model
            if model is None:
                from repro.plan.cost import CostModel

                model = CostModel(
                    latency_mean=self._latency_mean(),
                    cache=self.cache,
                    shards=self.shards,
                )
            text = model.annotated_explain(plan)
            if model.calibrated:
                static = model.uncalibrated()
                header = (
                    "-- cost model: calibrated ({})\n"
                    "-- this plan: calibrated ~{:.4f}s vs static ~{:.4f}s "
                    "(latency_mean {:.4f}s vs {:.4f}s)\n".format(
                        model.profile.summary(),
                        model.seconds(plan),
                        static.seconds(plan),
                        model.latency_mean,
                        static.latency_mean,
                    )
                )
                return header + text
            return text
        text = plan.explain()
        if self.batch_layout != default_batch_layout():
            # Annotate only when this engine deviates from the process
            # default, so golden plan snapshots stay byte-identical under
            # every CI layout leg.
            text = "-- batch_layout: {}\n".format(self.batch_layout) + text
        return text

    def _latency_mean(self):
        """Mean per-request latency in seconds (for the default cost model)."""
        mean = getattr(self.latency, "mean", None)
        if callable(mean):
            return mean()
        if isinstance(mean, (int, float)):
            return float(mean)
        return 0.05

    # -- calibration -----------------------------------------------------------

    def _ensure_cost_model(self):
        """``self.cost_model``, creating the default lazily."""
        if self.cost_model is None:
            from repro.plan.cost import CostModel

            self.cost_model = CostModel(
                latency_mean=self._latency_mean(),
                cache=self.cache,
                shards=self.shards,
            )
        return self.cost_model

    def recalibrate(self, profile=None, policy=None):
        """Re-price ``self.cost_model`` from measured figures.

        Without *profile*, one is built from the engine's own tracer,
        metrics registry, and cache (so a traced workload is all the
        setup needed).  With a
        :class:`~repro.obs.calibration.CalibrationPolicy` as *policy*,
        the profile must pass its sample-floor/completeness gate first.

        Returns ``(applied, profile, reason)`` — ``reason`` explains a
        rejection (``"ok"`` when applied), and the profile is returned
        either way so callers can inspect or persist it.
        """
        if profile is None:
            from repro.obs.calibration import CalibrationProfile

            profile = CalibrationProfile.from_sources(
                tracer=self.tracer,
                metrics=self.metrics,
                cache=self.cache,
                created_at=self.clock.now(),
            )
        if policy is not None:
            ok, reason = policy.admits(profile)
            if not ok:
                return False, profile, reason
        self._ensure_cost_model().apply_profile(profile)
        return True, profile, "ok"

    # -- execution ---------------------------------------------------------------------

    def _prepare(self, query, mode, tracer, deadline=None):
        """Plan + rewrite + instrument one SELECT; returns (plan, mode, qid)."""
        query_id = self._next_query_id(tracer)
        plan, _, _, mode, _ = self._pipeline(
            query, mode, tracer, query_id, deadline=deadline
        )
        if tracer is not None:
            self._instrument_plan(plan, tracer, query_id)
        return plan, mode, query_id

    def _cache_scope(self):
        """The per-query scratch-tier scope (no-op for plain caches).

        A :class:`~repro.web.cache.TieredResultCache` gets one scratch
        dict per query: repeated identical calls within the query are
        served without shared-tier locks, and the query keeps seeing one
        consistent answer per key even if shared tiers expire mid-run.
        """
        scope = getattr(self.cache, "query_scope", None)
        if scope is not None:
            return scope()
        return nullcontext()

    def _run_select(self, query, mode, deadline=None):
        tracer = self.tracer
        plan, mode, query_id = self._prepare(query, mode, tracer, deadline)
        if tracer is not None:
            tracer.emit(QUERY_SPAN, kind=BEGIN, query_id=query_id, mode=mode)
        started = self.clock.now()
        try:
            with self._cache_scope():
                rows = self._drain_batches(plan)
        finally:
            if tracer is not None:
                tracer.emit(QUERY_SPAN, kind=END, query_id=query_id)
        elapsed = self.clock.now() - started
        return QueryResult(plan.schema.names(), rows, elapsed=elapsed)

    def _drain_batches(self, plan):
        """Run *plan* through the batch protocol; returns all rows.

        The plan is opened/closed via the exception-safe context manager
        (an abandoned generator would otherwise leak AEVScan pump
        registrations), and every produced batch feeds the ``batch.rows``
        size histogram so the vectorization's effective granularity is
        observable per engine.
        """
        metrics = self.pump.metrics
        observe = metrics.observe
        before = kernel_stats()
        rows = []
        extend = rows.extend
        try:
            for batch in execute_batches(plan, self.batch_size):
                observe("batch.rows", len(batch))
                extend(batch)
        finally:
            # Bridge the process-global kernel counters into this
            # engine's registry as per-drain deltas, so obs snapshots
            # show how much work the columnar fast paths actually did.
            after = kernel_stats()
            compiled = after["compiled"] - before["compiled"]
            invoked = after["invoked"] - before["invoked"]
            if compiled:
                metrics.inc("batch.kernel_compiled", compiled)
            if invoked:
                metrics.inc("batch.kernel_invoked", invoked)
        return rows

    def execute(self, sql, mode=ASYNC, deadline=None):
        """Run a SELECT and materialize its result.

        *deadline* (a :class:`~repro.serve.deadline.Deadline`) bounds the
        query end-to-end: it tightens every external call's timeout to
        ``min(policy.call_timeout, deadline.remaining())`` and raises
        :class:`~repro.util.errors.QueryDeadlineExceeded` at the next
        checkpoint once the budget is spent (or the deadline cancelled).
        """
        return self._run_select(parse_select(sql), mode, deadline=deadline)

    def run(self, statement_sql, mode=ASYNC, deadline=None):
        """Execute any supported statement (SELECT or DDL/DML)."""
        statement = parse(statement_sql)
        if isinstance(statement, ast.SelectQuery):
            return self._run_select(statement, mode, deadline=deadline)
        if isinstance(statement, ast.Analyze):
            stats = self.database.analyze(statement.table)
            return QueryResult(
                ["table", "rows", "columns"],
                [
                    (name, table_stats.row_count, len(table_stats.columns))
                    for name, table_stats in sorted(stats.items())
                ],
            )
        if isinstance(statement, ast.CreateTable):
            self.database.create_table(statement.table, statement.columns)
            return QueryResult(["status"], [("created {}".format(statement.table),)])
        if isinstance(statement, ast.CreateIndex):
            self.database.create_index(
                statement.table, statement.column, statement.name
            )
            return QueryResult(
                ["status"], [("created index {}".format(statement.name),)]
            )
        if isinstance(statement, ast.DropIndex):
            self.database.drop_index(statement.name)
            return QueryResult(
                ["status"], [("dropped index {}".format(statement.name),)]
            )
        if isinstance(statement, ast.DropTable):
            self.database.drop_table(statement.table)
            return QueryResult(["status"], [("dropped {}".format(statement.table),)])
        if isinstance(statement, ast.Insert):
            table = self.database.table(statement.table)
            table.insert_many(statement.rows)
            return QueryResult(
                ["status"], [("inserted {} rows".format(len(statement.rows)),)]
            )
        if isinstance(statement, ast.Delete):
            table = self.database.table(statement.table)
            if statement.where is None:
                count = table.delete_where(lambda row: True)
            else:
                from repro.plan.binder import Binder

                predicate = Binder(
                    table.schema.with_qualifier(statement.table)
                ).bind(statement.where)
                count = table.delete_where(lambda row: predicate.eval(row) is True)
            return QueryResult(["status"], [("deleted {} rows".format(count),)])
        raise PlanError("unsupported statement {!r}".format(statement))

    # -- profiling --------------------------------------------------------------

    def profile(self, sql, mode=ASYNC):
        """Execute *sql* with per-operator instrumentation *and* tracing.

        Returns a :class:`~repro.wsq.profile.ProfileReport` carrying the
        query result, per-operator row/time counters, engine-level
        deltas (requests sent, cache hits, dedup savings), the trace
        handle, and the per-external-request breakdown.  When the engine
        has no tracer of its own, a temporary one is attached to the
        pump for the duration of the run.
        """
        from repro.wsq.profile import ProfileReport, profile_plan

        query = parse_select(sql)
        tracer = self.tracer
        borrowed_tracer = False
        if tracer is None:
            tracer = Tracer(clock=self.clock)
            borrowed_tracer = True
            self.pump.tracer = tracer
        try:
            plan, mode, query_id = self._prepare(query, mode, tracer)
            # _prepare attached the engine tracer via self.tracer paths
            # only for async contexts; re-instrument sync scans with the
            # (possibly borrowed) tracer.
            self._instrument_plan(plan, tracer, query_id)
            wrapped, stats = profile_plan(
                plan, clock=self.clock, tracer=tracer, query_id=query_id
            )
            context = _find_context(plan)
            requests_before = {
                name: client.requests_sent for name, client in self.clients.items()
            }
            cache_hits_before = self.cache.hits if self.cache is not None else 0
            cache_misses_before = (
                self.cache.misses if self.cache is not None else 0
            )
            pump_before = self.pump.stats.snapshot()
            tracer.emit(QUERY_SPAN, kind=BEGIN, query_id=query_id, mode=mode, sql=sql)
            started = self.clock.now()
            try:
                with self._cache_scope():
                    rows = self._drain_batches(wrapped)
            finally:
                tracer.emit(QUERY_SPAN, kind=END, query_id=query_id)
            elapsed = self.clock.now() - started
            # Let trailing settlement callbacks land so the report's
            # per-request breakdown covers every call.
            self.pump.quiesce(timeout=0.5)
        finally:
            if borrowed_tracer:
                self.pump.tracer = None
        result = QueryResult(plan.schema.names(), rows, elapsed=elapsed)
        deltas = {
            "requests[{}]".format(name): client.requests_sent
            - requests_before[name]
            for name, client in self.clients.items()
        }
        if self.cache is not None:
            hits_moved = self.cache.hits - cache_hits_before
            misses_moved = self.cache.misses - cache_misses_before
            deltas["cache_hits"] = hits_moved
            if hits_moved + misses_moved:
                deltas["cache_hit_ratio"] = round(
                    hits_moved / (hits_moved + misses_moved), 3
                )
        if context is not None:
            deltas["dedup_hits"] = context.dedup_hits
            deltas["calls_registered"] = context.calls_registered
        # Degradation / resilience accounting (only when anything happened,
        # so fault-free profiles render exactly as before).
        call_errors = _sum_plan_attr(wrapped, "call_errors")
        if context is not None:
            call_errors = max(call_errors, context.call_errors)
        if call_errors:
            deltas["call_errors"] = call_errors
        pump_after = self.pump.stats.snapshot()
        for counter in (
            "retries",
            "timeouts",
            "breaker_open_rejections",
            "coalesced",
        ):
            moved = pump_after[counter] - pump_before[counter]
            if moved:
                deltas[counter] = moved
        return ProfileReport(
            sql, mode, result, stats, deltas, trace=tracer, query_id=query_id
        )

    # -- statistics ------------------------------------------------------------

    def stats(self):
        """Aggregate engine/pump/cache/fault statistics."""
        payload = {
            "pump": self.pump.snapshot(),
            "engines": {
                name: client.engine.stats() for name, client in self.clients.items()
            },
            "requests_sent": {
                name: client.requests_sent for name, client in self.clients.items()
            },
        }
        latencies = self.pump.latencies()
        if latencies:
            payload["latencies"] = latencies
        if self.cache is not None:
            detailed = getattr(self.cache, "detailed_stats", None)
            payload["cache"] = (
                detailed() if detailed is not None else self.cache.stats()
            )
        if self.faults is not None:
            payload["faults"] = self.faults.snapshot()
            payload["client_retries"] = {
                name: client.retries for name, client in self.clients.items()
            }
        return payload

    def metrics_snapshot(self):
        """The full metrics-registry snapshot (counters/gauges/histograms).

        ``"breakers"`` adds the per-destination circuit-breaker states
        (closed/open/half-open plus transition timestamps) so operators
        can tell *why* a destination is failing fast, not just how often.
        ``"destinations"`` (present only when the search tier is
        sharded) adds each engine's per-shard scatter/gather view —
        requests, failures, degraded gathers, hedge tallies, and the
        per-shard breaker state.
        ``"trace"`` (present only when tracing is on) reports the ring
        buffer's fill and — crucially for calibration — how many events
        it has **dropped** since the last clear: a non-zero count means
        any trace-derived view is incomplete.
        """
        payload = self.pump.metrics.snapshot()
        payload["breakers"] = self.pump.breakers()
        destinations = {
            name: client.shard_stats()
            for name, client in self.clients.items()
            if hasattr(client, "shard_stats")
        }
        if destinations:
            payload["destinations"] = destinations
        tracer = self.tracer
        if tracer is not None:
            payload["trace"] = {
                "events": len(tracer),
                "capacity": tracer.capacity,
                "dropped": tracer.dropped,
            }
        return payload

    def observability(self):
        """The attached bundle, creating a disabled one on first use."""
        if self.obs is None:
            self.obs = Observability(metrics=self.pump.metrics, clock=self.clock)
        return self.obs


def _find_context(plan):
    """The AsyncContext of the first ReqSync/AEVScan in *plan*, if any."""
    context = getattr(plan, "context", None)
    if context is not None:
        return context
    inner = getattr(plan, "inner", None)
    if inner is not None:
        context = _find_context(inner)
        if context is not None:
            return context
    for child in plan.children:
        context = _find_context(child)
        if context is not None:
            return context
    return None


def _sum_plan_attr(plan, attribute):
    """Sum *attribute* over a (possibly profile-wrapped) plan tree."""
    inner = getattr(plan, "inner", plan)
    total = getattr(inner, attribute, 0) or 0
    for child in plan.children:
        total += _sum_plan_attr(child, attribute)
    return total


