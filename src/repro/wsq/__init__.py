"""WSQ: Web-Supported Database Queries — the user-facing engine.

:class:`~repro.wsq.engine.WsqEngine` wires the pieces of Figure 1
together: a local :class:`~repro.storage.database.Database`, search-engine
clients over the simulated Web, the virtual-table catalog
(``WebCount``/``WebPages`` per engine, plus ``WebFetch``/``WebLinks``),
the planner, and — for asynchronous mode — the request pump and the plan
rewriter.
"""

from repro.wsq.engine import QueryResult, WsqEngine
from repro.wsq.profile import ProfileReport
from repro.wsq.result import format_table

__all__ = ["ProfileReport", "QueryResult", "WsqEngine", "format_table"]
