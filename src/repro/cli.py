"""Interactive WSQ shell.

The paper mentions "a simple interface that allows users to pose limited
queries over our WSQ implementation"; this REPL is ours::

    $ wsq --load-datasets --latency 50
    wsq> Select Name, Count From States, WebCount Where Name = T1
         Order By Count Desc;

Dot-commands: ``.help``, ``.tables``, ``.mode sync|async``,
``.explain [form] <query>``, ``.stats``, ``.quit``.
"""

import argparse
import json
import sys

from repro.asynciter.resilience import (
    CircuitBreakerConfig,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.datasets import load_all
from repro.obs import Observability, render_waterfall, write_chrome_trace
from repro.storage import Database
from repro.util.errors import ReproError
from repro.web.cache import make_cache
from repro.web.faults import FaultModel
from repro.web.latency import UniformLatency
from repro.wsq import WsqEngine, format_table

BANNER = """WSQ/DSQ reproduction shell — type .help for commands.
Virtual tables: WebCount[_AV|_Google], WebPages[_AV|_Google], WebFetch, WebLinks
"""

HELP = """Statements end with ';'.  Dot-commands:
  .help              this text
  .tables            list stored tables (and indexes)
  .mode [sync|async|auto]  show or set execution mode
  .explain [FORM] <query>  show the plan without running it; FORM is one
                     of logical|optimized|physical|rules|costs
                     (default physical)
  .profile <query>   run with per-operator instrumentation + trace
  .stats             pump / engine / cache statistics
  .metrics [--prom]  metrics-registry snapshot (latency percentiles);
                     --prom prints Prometheus text exposition instead
  .slo               per-tenant SLO status (serve.slo.* counters)
  .recalibrate       re-price the cost model from the live trace/metrics
  .quit              exit
"""


def build_engine(args):
    database = Database(args.db) if args.db else Database()
    if args.load_datasets and not database.has_table("States"):
        load_all(database)
    latency = None
    if args.latency > 0:
        seconds = args.latency / 1000.0
        latency = UniformLatency(seconds * 0.5, seconds * 1.5)
    cache = _cache_config(args)
    faults, resilience = _chaos_config(args)
    on_error = getattr(args, "on_error", None)
    obs = None
    if (
        getattr(args, "trace", None)
        or getattr(args, "waterfall", False)
        or getattr(args, "metrics", False)
    ):
        obs = Observability.enabled()
    return WsqEngine(
        database=database,
        latency=latency,
        cache=cache,
        faults=faults,
        resilience=resilience,
        on_error=on_error,
        obs=obs,
        batch_size=getattr(args, "batch_size", None),
        batch_layout=getattr(args, "batch_layout", None),
        calibration=getattr(args, "calibration", None),
        shards=getattr(args, "shards", None),
        parallelism=getattr(args, "parallelism", None),
        rules=getattr(args, "rules", None),
    )


def _cache_config(args):
    """Resolve the cache flags into a cache instance (or the off sentinel).

    ``--no-cache`` returns ``False`` — the explicit "even if
    ``REPRO_CACHE`` is set, run this engine uncached" sentinel the
    engine recognises.  ``--cache`` is the historical boolean (a plain
    in-memory cache); ``--cache-tier`` selects the stack explicitly and
    ``--cache-ttl`` / ``--cache-dir`` parameterize it.
    """
    if getattr(args, "no_cache", False):
        return False
    tier = getattr(args, "cache_tier", None)
    ttl = getattr(args, "cache_ttl", None)
    if tier is None:
        if not getattr(args, "cache", False) and ttl is None:
            return None  # defer to REPRO_CACHE (engine-side env fallback)
        tier = "memory"
    return make_cache(
        tier=tier,
        ttl=ttl,
        disk_path=getattr(args, "cache_dir", None),
    )


def _chaos_config(args):
    """Fault model + resilience policy from the chaos CLI flags."""
    fault_rate = getattr(args, "fault_rate", 0.0) or 0.0
    hard_rate = getattr(args, "fault_hard_rate", 0.0) or 0.0
    outages = getattr(args, "outage", None) or []
    faults = None
    if fault_rate > 0 or hard_rate > 0 or outages:
        faults = FaultModel(
            seed=getattr(args, "fault_seed", 0) or 0,
            transient_rate=fault_rate,
            hard_rate=hard_rate,
            outages=outages,
        )
    retry_attempts = getattr(args, "retry_attempts", None)
    call_timeout = getattr(args, "call_timeout", None)
    resilience = None
    if faults is not None or retry_attempts or call_timeout:
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=retry_attempts or 3),
            call_timeout=call_timeout,
            breaker=CircuitBreakerConfig(),
        )
    return faults, resilience


def main(argv=None):
    parser = argparse.ArgumentParser(prog="wsq", description=__doc__)
    parser.add_argument("--db", help="database directory (default: in-memory)")
    parser.add_argument(
        "--load-datasets",
        action="store_true",
        help="preload States/Sigs/CSFields/Movies",
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.0,
        help="simulated search latency midpoint in milliseconds",
    )
    parser.add_argument(
        "--cache", action="store_true", help="enable the search-result cache"
    )
    cache_group = parser.add_argument_group("result cache")
    cache_group.add_argument(
        "--cache-tier",
        choices=("off", "memory", "tiered", "disk"),
        default=None,
        help="result-cache stack: off, a shared memory LRU, "
        "scratch+memory (tiered), or scratch+memory+disk",
    )
    cache_group.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds a cached result stays fresh (default: forever)",
    )
    cache_group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the persistent disk tier "
        "(default .wsq-cache, only with --cache-tier disk)",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="force the result cache off (overrides --cache/--cache-tier "
        "and the REPRO_CACHE environment variable)",
    )
    parser.add_argument(
        "--sync", action="store_true", help="start in synchronous mode"
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="execution batch granularity (rows per operator pull; "
        "1 = row-at-a-time; default 256 or $REPRO_BATCH_SIZE)",
    )
    parser.add_argument(
        "--batch-layout",
        choices=("columnar", "row"),
        default=None,
        help="batch container: columnar (column vectors + compiled "
        "column-at-a-time kernels) or row (the historical row-of-tuples "
        "pipeline; default columnar or $REPRO_BATCH_LAYOUT)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="search-tier shard count: N > 1 splits each engine's index "
        "into N deterministic shards behind a scatter-gather broker "
        "(default 1 or $REPRO_SHARDS; 1 = the unsharded monolith)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="intra-query worker count: N > 1 fans eligible local scan "
        "pipelines over an Exchange operator "
        "(default 1 or $REPRO_PARALLELISM; 1 = sequential plans)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="PACKS",
        help="opt-in logical rewrite packs, comma-separated: pushdown, "
        "prune, reorder, decorrelate, or_to_union, early_filter, "
        "agg_single_pass, or 'all' (default none or $REPRO_RULES)",
    )
    parser.add_argument(
        "-c", "--command", help="run one statement and exit", default=None
    )
    chaos = parser.add_argument_group("chaos / resilience")
    chaos.add_argument(
        "--on-error",
        choices=("raise", "drop", "null"),
        default=None,
        dest="on_error",
        help="graceful-degradation policy for failed external calls",
    )
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability of a transient fault per external call attempt",
    )
    chaos.add_argument(
        "--fault-hard-rate",
        type=float,
        default=0.0,
        help="probability of a hard (non-retryable) fault per request",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0, help="fault-schedule seed"
    )
    chaos.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="ENGINE",
        help="mark a search engine as down (repeatable)",
    )
    chaos.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        help="max attempts per external call (default 3 when chaos is on)",
    )
    chaos.add_argument(
        "--call-timeout",
        type=float,
        default=None,
        help="per-call timeout in seconds enforced by the pump",
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a request-lifecycle trace and write Chrome-trace "
        "JSON to FILE on exit (open in chrome://tracing or Perfetto)",
    )
    observability.add_argument(
        "--waterfall",
        action="store_true",
        help="print an ASCII request waterfall after each statement",
    )
    observability.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics snapshot (percentile latencies) on exit",
    )
    observability.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="format for the --metrics dump: the JSON snapshot (default) "
        "or Prometheus text exposition",
    )
    observability.add_argument(
        "--calibration",
        metavar="PROFILE",
        default=None,
        help="load a persisted calibration profile (JSON written by "
        "CalibrationProfile.save) and price plans from measured figures",
    )
    args = parser.parse_args(argv)

    engine = build_engine(args)
    mode = "sync" if args.sync else "async"

    if args.command is not None:
        status = _run_statement(engine, args.command, mode, waterfall=args.waterfall)
        _finish_observability(engine, args)
        return status

    print(BANNER)
    buffer = []
    while True:
        try:
            prompt = "wsq> " if not buffer else "...> "
            line = input(prompt)
        except EOFError:
            print()
            _finish_observability(engine, args)
            return 0
        except KeyboardInterrupt:
            buffer = []
            print()
            continue
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            mode = _dot_command(engine, stripped, mode)
            if mode is None:
                _finish_observability(engine, args)
                return 0
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(buffer)
            buffer = []
            _run_statement(engine, statement, mode, waterfall=args.waterfall)


def _finish_observability(engine, args):
    """Write the trace file / metrics dump the observability flags asked for."""
    if getattr(args, "trace", None) and engine.tracer is not None:
        engine.pump.quiesce()
        write_chrome_trace(args.trace, engine.tracer.events())
        print(
            "trace: {} event(s) -> {} (open in chrome://tracing or "
            "https://ui.perfetto.dev)".format(len(engine.tracer), args.trace),
            file=sys.stderr,
        )
    if getattr(args, "metrics", False):
        engine.pump.quiesce()
        if getattr(args, "metrics_format", "json") == "prom":
            print(engine.metrics.to_prometheus(), end="")
        else:
            print(json.dumps(engine.metrics_snapshot(), indent=1, sort_keys=True))


def _dot_command(engine, line, mode):
    parts = line.split(None, 1)
    command = parts[0].lower()
    argument = parts[1] if len(parts) > 1 else ""
    if command in (".quit", ".exit"):
        return None
    if command == ".help":
        print(HELP)
    elif command == ".tables":
        for name in engine.database.table_names():
            print(" ", name)
        for name in engine.database.index_names():
            print("  (index)", name)
    elif command == ".mode":
        if argument in ("sync", "async", "auto"):
            mode = argument
        print("mode:", mode)
    elif command == ".explain":
        form = "physical"
        head = argument.split(None, 1)
        if head and head[0].lower() in engine.EXPLAIN_FORMS:
            form = head[0].lower()
            argument = head[1] if len(head) > 1 else ""
        if not argument:
            print("usage: .explain [{}] <query>".format("|".join(engine.EXPLAIN_FORMS)))
        else:
            try:
                print(engine.explain(argument.rstrip(";"), mode=mode, form=form))
            except ReproError as exc:
                _print_error(exc)
    elif command == ".profile":
        if not argument:
            print("usage: .profile <query>")
        else:
            try:
                print(engine.profile(argument.rstrip(";"), mode=mode).render())
            except ReproError as exc:
                _print_error(exc)
    elif command == ".stats":
        stats = engine.stats()
        for key, value in stats.items():
            print("  {}: {}".format(key, value))
        breakers = stats.get("pump", {}).get("breakers") or {}
        if breakers:
            print("  circuit breakers:")
            for destination, snap in sorted(breakers.items()):
                line = "    {}: {}".format(destination, snap["state"])
                if snap.get("opened_at") is not None:
                    line += " (opened_at={:.3f}".format(snap["opened_at"])
                    if snap.get("last_transition_at") is not None:
                        line += ", last_transition_at={:.3f}".format(
                            snap["last_transition_at"]
                        )
                    line += ")"
                line += "  opens={} half_opens={} closes={} rejections={}".format(
                    snap["opens"],
                    snap["half_opens"],
                    snap["closes"],
                    snap["rejections"],
                )
                print(line)
        destinations = {
            name: client.shard_stats()
            for name, client in engine.clients.items()
            if hasattr(client, "shard_stats")
        }
        if destinations:
            print("  shards:")
            for name, view in sorted(destinations.items()):
                hedges = view["hedges"]
                print(
                    "    {}: {} shards, scatters={} degraded_gathers={} "
                    "hedges(issued={} won={} lost={} cancelled={})".format(
                        name,
                        view["num_shards"],
                        view["scatters"],
                        view["degraded_gathers"],
                        hedges["issued"],
                        hedges["won"],
                        hedges["lost"],
                        hedges["cancelled"],
                    )
                )
                for dest, entry in sorted(view["per_shard"].items()):
                    line = "      {}: requests={} failures={} degraded={}".format(
                        dest,
                        entry["requests"],
                        entry["failures"],
                        entry["degraded"],
                    )
                    breaker = entry.get("breaker")
                    if breaker is not None:
                        line += " breaker={}".format(breaker["state"])
                    print(line)
    elif command == ".metrics":
        if argument.strip() in ("--prom", "prom"):
            print(engine.metrics.to_prometheus(), end="")
        else:
            print(json.dumps(engine.metrics_snapshot(), indent=1, sort_keys=True))
    elif command == ".slo":
        from repro.serve.slo import slo_counters_view

        view = slo_counters_view(engine.metrics)
        if not view:
            print("(no SLO activity recorded)")
        for tenant, stats in view.items():
            line = "  {}: met {}/{}".format(
                tenant, stats["met"], stats["total"]
            )
            if "met_fraction" in stats:
                line += " ({:.1%})".format(stats["met_fraction"])
            if "burn" in stats:
                line += "  burn {:.2f}x".format(stats["burn"])
            print(line)
    elif command == ".recalibrate":
        applied, profile, reason = engine.recalibrate()
        print(
            "calibration {}: {}".format(
                "applied" if applied else "rejected ({})".format(reason),
                profile.summary(),
            )
        )
    else:
        print("unknown command {!r}; try .help".format(command))
    return mode


def _run_statement(engine, statement, mode, waterfall=False):
    statement = statement.strip().rstrip(";")
    if not statement:
        return 0
    tracer = engine.tracer
    events_before = len(tracer) if tracer is not None else 0
    try:
        result = engine.run(statement, mode=mode)
    except ReproError as exc:
        _print_error(exc)
        return 1
    print(format_table(result, max_rows=40))
    if result.elapsed is not None:
        print(
            "{} rows in {:.3f}s ({} mode)".format(len(result), result.elapsed, mode)
        )
    if waterfall and tracer is not None:
        engine.pump.quiesce()
        # Only this statement's events (the ring may hold older queries).
        print(
            render_waterfall(
                tracer.events()[events_before:], dropped=tracer.dropped
            )
        )
    return 0


def _print_error(exc):
    diagnostic = getattr(exc, "diagnostic", None)
    print("error:", diagnostic() if callable(diagnostic) else exc, file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
