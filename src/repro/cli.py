"""Interactive WSQ shell.

The paper mentions "a simple interface that allows users to pose limited
queries over our WSQ implementation"; this REPL is ours::

    $ wsq --load-datasets --latency 50
    wsq> Select Name, Count From States, WebCount Where Name = T1
         Order By Count Desc;

Dot-commands: ``.help``, ``.tables``, ``.mode sync|async``,
``.explain <query>``, ``.stats``, ``.quit``.
"""

import argparse
import sys

from repro.asynciter.resilience import (
    CircuitBreakerConfig,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.datasets import load_all
from repro.storage import Database
from repro.util.errors import ReproError
from repro.web.cache import ResultCache
from repro.web.faults import FaultModel
from repro.web.latency import UniformLatency
from repro.wsq import WsqEngine, format_table

BANNER = """WSQ/DSQ reproduction shell — type .help for commands.
Virtual tables: WebCount[_AV|_Google], WebPages[_AV|_Google], WebFetch, WebLinks
"""

HELP = """Statements end with ';'.  Dot-commands:
  .help              this text
  .tables            list stored tables (and indexes)
  .mode [sync|async|auto]  show or set execution mode
  .explain <query>   show the (rewritten) plan without running it
  .profile <query>   run with per-operator instrumentation
  .stats             pump / engine / cache statistics
  .quit              exit
"""


def build_engine(args):
    database = Database(args.db) if args.db else Database()
    if args.load_datasets and not database.has_table("States"):
        load_all(database)
    latency = None
    if args.latency > 0:
        seconds = args.latency / 1000.0
        latency = UniformLatency(seconds * 0.5, seconds * 1.5)
    cache = ResultCache() if args.cache else None
    faults, resilience = _chaos_config(args)
    on_error = getattr(args, "on_error", None)
    return WsqEngine(
        database=database,
        latency=latency,
        cache=cache,
        faults=faults,
        resilience=resilience,
        on_error=on_error,
    )


def _chaos_config(args):
    """Fault model + resilience policy from the chaos CLI flags."""
    fault_rate = getattr(args, "fault_rate", 0.0) or 0.0
    hard_rate = getattr(args, "fault_hard_rate", 0.0) or 0.0
    outages = getattr(args, "outage", None) or []
    faults = None
    if fault_rate > 0 or hard_rate > 0 or outages:
        faults = FaultModel(
            seed=getattr(args, "fault_seed", 0) or 0,
            transient_rate=fault_rate,
            hard_rate=hard_rate,
            outages=outages,
        )
    retry_attempts = getattr(args, "retry_attempts", None)
    call_timeout = getattr(args, "call_timeout", None)
    resilience = None
    if faults is not None or retry_attempts or call_timeout:
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=retry_attempts or 3),
            call_timeout=call_timeout,
            breaker=CircuitBreakerConfig(),
        )
    return faults, resilience


def main(argv=None):
    parser = argparse.ArgumentParser(prog="wsq", description=__doc__)
    parser.add_argument("--db", help="database directory (default: in-memory)")
    parser.add_argument(
        "--load-datasets",
        action="store_true",
        help="preload States/Sigs/CSFields/Movies",
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.0,
        help="simulated search latency midpoint in milliseconds",
    )
    parser.add_argument(
        "--cache", action="store_true", help="enable the search-result cache"
    )
    parser.add_argument(
        "--sync", action="store_true", help="start in synchronous mode"
    )
    parser.add_argument(
        "-c", "--command", help="run one statement and exit", default=None
    )
    chaos = parser.add_argument_group("chaos / resilience")
    chaos.add_argument(
        "--on-error",
        choices=("raise", "drop", "null"),
        default=None,
        dest="on_error",
        help="graceful-degradation policy for failed external calls",
    )
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability of a transient fault per external call attempt",
    )
    chaos.add_argument(
        "--fault-hard-rate",
        type=float,
        default=0.0,
        help="probability of a hard (non-retryable) fault per request",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0, help="fault-schedule seed"
    )
    chaos.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="ENGINE",
        help="mark a search engine as down (repeatable)",
    )
    chaos.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        help="max attempts per external call (default 3 when chaos is on)",
    )
    chaos.add_argument(
        "--call-timeout",
        type=float,
        default=None,
        help="per-call timeout in seconds enforced by the pump",
    )
    args = parser.parse_args(argv)

    engine = build_engine(args)
    mode = "sync" if args.sync else "async"

    if args.command is not None:
        return _run_statement(engine, args.command, mode)

    print(BANNER)
    buffer = []
    while True:
        try:
            prompt = "wsq> " if not buffer else "...> "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            buffer = []
            print()
            continue
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            mode = _dot_command(engine, stripped, mode)
            if mode is None:
                return 0
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(buffer)
            buffer = []
            _run_statement(engine, statement, mode)


def _dot_command(engine, line, mode):
    parts = line.split(None, 1)
    command = parts[0].lower()
    argument = parts[1] if len(parts) > 1 else ""
    if command in (".quit", ".exit"):
        return None
    if command == ".help":
        print(HELP)
    elif command == ".tables":
        for name in engine.database.table_names():
            print(" ", name)
        for name in engine.database.index_names():
            print("  (index)", name)
    elif command == ".mode":
        if argument in ("sync", "async", "auto"):
            mode = argument
        print("mode:", mode)
    elif command == ".explain":
        if not argument:
            print("usage: .explain <query>")
        else:
            try:
                print(engine.explain(argument.rstrip(";"), mode=mode))
            except ReproError as exc:
                _print_error(exc)
    elif command == ".profile":
        if not argument:
            print("usage: .profile <query>")
        else:
            try:
                print(engine.profile(argument.rstrip(";"), mode=mode).render())
            except ReproError as exc:
                _print_error(exc)
    elif command == ".stats":
        stats = engine.stats()
        for key, value in stats.items():
            print("  {}: {}".format(key, value))
    else:
        print("unknown command {!r}; try .help".format(command))
    return mode


def _run_statement(engine, statement, mode):
    statement = statement.strip().rstrip(";")
    if not statement:
        return 0
    try:
        result = engine.run(statement, mode=mode)
    except ReproError as exc:
        _print_error(exc)
        return 1
    print(format_table(result, max_rows=40))
    if result.elapsed is not None:
        print(
            "{} rows in {:.3f}s ({} mode)".format(len(result), result.elapsed, mode)
        )
    return 0


def _print_error(exc):
    diagnostic = getattr(exc, "diagnostic", None)
    print("error:", diagnostic() if callable(diagnostic) else exc, file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
