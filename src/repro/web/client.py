"""Clients that add latency (and caching) in front of a search engine.

The engine computes answers instantly; the client charges the simulated
network delay.  Synchronous calls block the calling thread (this is the
paper's sequential baseline, where "the query processor is idle during the
request"); asynchronous calls ``await`` the same delay, so many can be in
flight at once on one event loop — the request-pump side.

A cache hit skips the delay entirely, modelling a local result cache that
avoids the network round trip.
"""

import asyncio
import time

from repro.web.cache import ResultCache


class SearchClient:
    """Latency-charging, optionally caching access to one engine.

    ``page_size`` models result pagination: engines of the era returned
    ~10 hits per response, so "retrieving all URLs for a given search
    expression could be extremely expensive (requiring many additional
    network requests beyond the initial search)" (paper Section 3).  A
    ranked search for *limit* hits costs ``ceil(limit / page_size)``
    sequential round trips; counts cost one.
    """

    def __init__(self, engine, latency=None, cache=None, page_size=10):
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.engine = engine
        self.latency = latency
        self.cache = cache
        self.page_size = page_size
        self.requests_sent = 0  # actual (non-cache-hit) requests

    @property
    def name(self):
        return self.engine.name

    # -- synchronous (sequential query processing) ---------------------------

    def count(self, expr_text):
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        self._sleep(expr_text)
        result = self.engine.count(expr_text)
        self._cache_put(key, result)
        return result

    def search(self, expr_text, limit):
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        for _ in range(self._pages_for(limit)):
            self._sleep(expr_text)
        result = self.engine.search(expr_text, limit)
        self._cache_put(key, result)
        return result

    # -- asynchronous (request pump) -------------------------------------------

    async def count_async(self, expr_text):
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        await self._async_sleep(expr_text)
        result = self.engine.count(expr_text)
        self._cache_put(key, result)
        return result

    async def search_async(self, expr_text, limit):
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        # Result pages arrive sequentially even on the async path: page
        # k+1 cannot be requested before page k's response names it.
        for _ in range(self._pages_for(limit)):
            await self._async_sleep(expr_text)
        result = self.engine.search(expr_text, limit)
        self._cache_put(key, result)
        return result

    def _pages_for(self, limit):
        return max(1, -(-limit // self.page_size))  # ceil, at least one page

    # -- internals ----------------------------------------------------------------

    def _delay(self, expr_text):
        if self.latency is None:
            return 0.0
        return self.latency.delay(self.engine.name, expr_text)

    def _sleep(self, expr_text):
        self.requests_sent += 1
        delay = self._delay(expr_text)
        if delay > 0:
            time.sleep(delay)

    async def _async_sleep(self, expr_text):
        self.requests_sent += 1
        delay = self._delay(expr_text)
        if delay > 0:
            await asyncio.sleep(delay)

    def _cache_get(self, key):
        if self.cache is None:
            return None
        return self.cache.get(key)

    def _cache_put(self, key, value):
        if self.cache is not None:
            self.cache.put(key, value)
