"""Clients that add latency (and caching, and faults) in front of a search engine.

The engine computes answers instantly; the client charges the simulated
network delay.  Synchronous calls block the calling thread (this is the
paper's sequential baseline, where "the query processor is idle during the
request"); asynchronous calls ``await`` the same delay, so many can be in
flight at once on one event loop — the request-pump side.

A cache hit skips the delay entirely, modelling a local result cache that
avoids the network round trip.

Fault injection & resilience
----------------------------

With a :class:`~repro.web.faults.FaultModel` attached, each request
*attempt* first consults the fault schedule (a stable function of
``(engine, expr, attempt)``):

- transient/hard faults charge one latency round trip, then raise —
  the request went out and came back an error;
- an engine outage raises immediately (connection refused is fast);
- a hung request sleeps.  On the sync path the client itself enforces
  the resilience policy's per-call timeout (there is no event loop to
  do it), sleeping ``min(hang, timeout)`` before raising
  :class:`~repro.util.errors.RequestTimeoutError`; on the async path
  the hang sleeps under the pump's ``asyncio.wait_for``.

The *sync* methods additionally run the shared
:class:`~repro.asynciter.resilience.RetryPolicy` retry loop internally;
on the async path the pump owns retries.  Both paths therefore retry the
same attempts of the same requests, so a faulted workload yields
identical results in sequential and asynchronous execution.
"""

import asyncio
import time

from repro.asynciter.resilience import run_sync_with_retries
from repro.util.errors import CachedFailureError, RequestTimeoutError
from repro.web.cache import ResultCache
from repro.web.faults import HANG, OUTAGE


class SearchClient:
    """Latency-charging, optionally caching access to one engine.

    ``page_size`` models result pagination: engines of the era returned
    ~10 hits per response, so "retrieving all URLs for a given search
    expression could be extremely expensive (requiring many additional
    network requests beyond the initial search)" (paper Section 3).  A
    ranked search for *limit* hits costs ``ceil(limit / page_size)``
    sequential round trips; counts cost one.

    ``faults`` is an optional :class:`~repro.web.faults.FaultModel`;
    ``resilience`` an optional
    :class:`~repro.asynciter.resilience.ResiliencePolicy` used by the
    sync path's internal retry loop (the pump applies the same policy on
    the async path).
    """

    def __init__(
        self,
        engine,
        latency=None,
        cache=None,
        page_size=10,
        faults=None,
        resilience=None,
        obs=None,
    ):
        if page_size < 1:
            raise ValueError("page size must be positive")
        self.engine = engine
        self.latency = latency
        self.cache = cache
        self.page_size = page_size
        self.faults = faults
        self.resilience = resilience
        self.obs = obs  # optional repro.obs.Observability bundle
        self.requests_sent = 0  # actual (non-cache-hit) request round trips
        self.faults_seen = 0  # injected faults observed by this client
        self.retries = 0  # sync-path retry attempts

    @property
    def name(self):
        return self.engine.name

    # -- synchronous (sequential query processing) ---------------------------

    def count(self, expr_text):
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached

        def attempt(n):
            self._fault_gate_sync(expr_text, n)
            self._sleep(expr_text)
            return self.engine.count(expr_text)

        result = self._retry_with_failure_caching(key, expr_text, attempt)
        self._cache_put(key, result)
        return result

    def search(self, expr_text, limit):
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached

        def attempt(n):
            self._fault_gate_sync(expr_text, n)
            for _ in range(self._pages_for(limit)):
                self._sleep(expr_text)
            return self.engine.search(expr_text, limit)

        result = self._retry_with_failure_caching(key, expr_text, attempt)
        self._cache_put(key, result)
        return result

    # -- asynchronous (request pump) -------------------------------------------

    async def count_async(self, expr_text, attempt=0):
        """One *attempt* of an asynchronous count (the pump retries)."""
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        await self._fault_gate_async(expr_text, attempt)
        await self._async_sleep(expr_text)
        result = self.engine.count(expr_text)
        self._cache_put(key, result)
        return result

    async def search_async(self, expr_text, limit, attempt=0):
        """One *attempt* of an asynchronous search (the pump retries)."""
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        await self._fault_gate_async(expr_text, attempt)
        # Result pages arrive sequentially even on the async path: page
        # k+1 cannot be requested before page k's response names it.
        for _ in range(self._pages_for(limit)):
            await self._async_sleep(expr_text)
        result = self.engine.search(expr_text, limit)
        self._cache_put(key, result)
        return result

    def _pages_for(self, limit):
        return max(1, -(-limit // self.page_size))  # ceil, at least one page

    # -- fault injection ------------------------------------------------------------

    def _retry_sync(self, expr_text, attempt_fn):
        if self.resilience is None:
            return attempt_fn(0)

        def on_retry(attempt, exc):
            self.retries += 1

        return run_sync_with_retries(
            (self.engine.name, expr_text),
            attempt_fn,
            self.resilience,
            on_retry=on_retry,
        )

    def _next_fault(self, expr_text, attempt):
        if self.faults is None:
            return None
        fault = self.faults.fault_for(self.engine.name, expr_text, attempt)
        if fault is not None:
            self.faults_seen += 1
        return fault

    def _fault_gate_sync(self, expr_text, attempt):
        fault = self._next_fault(expr_text, attempt)
        if fault is None:
            return
        if fault.kind == OUTAGE:
            raise fault.error  # connection refused: no round trip charged
        if fault.kind == HANG:
            self._count_round_trip()
            timeout = (
                self.resilience.call_timeout if self.resilience is not None else None
            )
            wait = (
                fault.hang_seconds
                if timeout is None
                else min(fault.hang_seconds, timeout)
            )
            if wait > 0:
                time.sleep(wait)
            raise RequestTimeoutError(
                "request to {!r} for {!r} hung (gave up after {:.3f}s)".format(
                    self.engine.name, expr_text, wait
                )
            )
        # Transient or hard: the round trip happened and returned an error.
        self._count_round_trip()
        delay = self._delay(expr_text)
        if delay > 0:
            time.sleep(delay)
        raise fault.error

    async def _fault_gate_async(self, expr_text, attempt):
        fault = self._next_fault(expr_text, attempt)
        if fault is None:
            return
        if fault.kind == OUTAGE:
            raise fault.error
        if fault.kind == HANG:
            self._count_round_trip()
            # Hang under the pump's asyncio.wait_for; if no timeout is
            # configured the hang eventually resolves into a timeout
            # error itself, mirroring the sync path.
            if fault.hang_seconds > 0:
                await asyncio.sleep(fault.hang_seconds)
            raise RequestTimeoutError(
                "request to {!r} for {!r} hung (gave up after {:.3f}s)".format(
                    self.engine.name, expr_text, fault.hang_seconds
                )
            )
        self._count_round_trip()
        delay = self._delay(expr_text)
        if delay > 0:
            await asyncio.sleep(delay)
        raise fault.error

    # -- internals ----------------------------------------------------------------

    def _delay(self, expr_text):
        if self.latency is None:
            return 0.0
        return self.latency.delay(self.engine.name, expr_text)

    def _sleep(self, expr_text):
        self._count_round_trip()
        delay = self._delay(expr_text)
        if delay > 0:
            time.sleep(delay)

    async def _async_sleep(self, expr_text):
        self._count_round_trip()
        delay = self._delay(expr_text)
        if delay > 0:
            await asyncio.sleep(delay)

    def _count_round_trip(self):
        self.requests_sent += 1
        if self.obs is not None:
            self.obs.metrics.inc("web.round_trips", engine=self.engine.name)

    def _cache_get(self, key):
        """Read the cache: a value, ``None`` (miss), or a replayed failure.

        Uses the status-carrying :meth:`~repro.web.cache.ResultCache.lookup`
        when the cache provides it, so fresh *and* stale entries serve and
        negatively-cached failures replay as
        :class:`~repro.util.errors.CachedFailureError` (deliberately not a
        :class:`~repro.util.errors.TransientWebError`: a replayed failure
        is never retried — the negative TTL, not the retry policy, decides
        when the destination is probed again).
        """
        if self.cache is None:
            return None
        lookup = getattr(self.cache, "lookup", None)
        if lookup is None:  # duck-typed stand-in cache: legacy surface
            value = self.cache.get(key)
            if value is not None:
                self._note_cache_hit(key)
            return value
        found = lookup(key)
        if found.failure:
            self._note_cache_hit(key)
            raise CachedFailureError(
                "negatively cached failure for {!r}: {}: {}".format(
                    key, found.value.error_type, found.value.message
                )
            )
        if found.hit:
            self._note_cache_hit(key)
            return found.value
        return None

    def _note_cache_hit(self, key):
        if self.obs is not None:
            self.obs.metrics.inc("web.cache_hits", engine=self.engine.name)
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.emit(
                    "web.cache_hit", destination=self.engine.name, key=str(key)
                )

    def _retry_with_failure_caching(self, key, expr_text, attempt_fn):
        """Sync-path execution with negative caching of exhausted failures.

        Only the *synchronous* client writes failure records: here the
        retry loop has already run its course, so the failure is final
        for this request.  On the async path the pump owns retries —
        caching a per-attempt error there would negatively cache an
        outcome the very next retry might fix.
        """
        try:
            return self._retry_sync(expr_text, attempt_fn)
        except Exception as exc:
            put_failure = getattr(self.cache, "put_failure", None)
            if put_failure is not None:
                put_failure(key, exc)
            raise

    def _cache_put(self, key, value):
        if self.cache is not None:
            self.cache.put(key, value)
