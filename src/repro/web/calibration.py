"""Corpus calibration: what the synthetic Web must contain.

This module turns the dataset calibration targets into *document recipes*:
exact numbers of pages mentioning each entity and each entity/keyword
co-occurrence.  Because recipes are counted (not sampled), the realized
hit counts equal their targets exactly, so the paper's published result
shapes — Query 1's top five states, Query 2's per-capita ordering, Query
3's four-corners dropoff, Query 4's six capital/state inversions, the
Sigs-near-Knuth order — are reproduced deterministically.

Scaling: state and capital targets are real 1999 Web counts (millions);
dividing by ``count_scale`` turns them into corpus-sized page counts while
preserving every ratio.  NEAR co-occurrence targets (paper scale ~10³) are
divided by ``near_scale``.  SIG/field/movie targets are already page-sized
and are used unscaled.
"""

from repro.datasets.csfields import CS_FIELDS
from repro.datasets.movies import MOVIES
from repro.datasets.sigs import SIGS
from repro.datasets.states import STATES
from repro.util.rng import stable_hash, stable_uniform
from repro.web.tokenizer import phrase_tokens

# Keyword pool for the Table-1 template benchmarks (paper Section 5 lists
# "computer", "beaches", "crime", "politics", "frogs", ...).
TEMPLATE_KEYWORD_POOL = [
    "computer", "beaches", "crime", "politics", "frogs", "skiing",
    "music", "weather", "history", "football", "lakes", "mountains",
    "desert", "technology", "tourism", "farming",
]

# Query 3 targets: pages mentioning the state NEAR "four corners".
# Anchored to the paper's results, including the sharp dropoff after Utah.
FOUR_CORNERS_NEAR = {
    "Colorado": 1745,
    "New Mexico": 1249,
    "Arizona": 1095,
    "Utah": 994,
    "California": 215,
    "Nevada": 40,
    "Texas": 32,
    "Wyoming": 16,
}

# DSQ scenario: pages mentioning a state NEAR "scuba diving" (page counts).
SCUBA_STATES = {
    "Florida": 40,
    "Hawaii": 35,
    "California": 30,
    "Texas": 8,
    "North Carolina": 6,
    "New Jersey": 5,
    "Washington": 5,
}

# DSQ triples: pages mentioning state AND movie, both NEAR "scuba diving".
SCUBA_TRIPLES = [
    ("Florida", "Deep Blue Reef", 10),
    ("California", "The Abyss", 6),
]

# How many extra pages mention a keyword alone (so keyword-only searches
# return something).
KEYWORD_ONLY_PAGES = 25

STATE_CODES = {
    "Alabama": "al", "Alaska": "ak", "Arizona": "az", "Arkansas": "ar",
    "California": "ca", "Colorado": "co", "Connecticut": "ct",
    "Delaware": "de", "Florida": "fl", "Georgia": "ga", "Hawaii": "hi",
    "Idaho": "id", "Illinois": "il", "Indiana": "in", "Iowa": "ia",
    "Kansas": "ks", "Kentucky": "ky", "Louisiana": "la", "Maine": "me",
    "Maryland": "md", "Massachusetts": "ma", "Michigan": "mi",
    "Minnesota": "mn", "Mississippi": "ms", "Missouri": "mo",
    "Montana": "mt", "Nebraska": "ne", "Nevada": "nv",
    "New Hampshire": "nh", "New Jersey": "nj", "New Mexico": "nm",
    "New York": "ny", "North Carolina": "nc", "North Dakota": "nd",
    "Ohio": "oh", "Oklahoma": "ok", "Oregon": "or", "Pennsylvania": "pa",
    "Rhode Island": "ri", "South Carolina": "sc", "South Dakota": "sd",
    "Tennessee": "tn", "Texas": "tx", "Utah": "ut", "Vermont": "vt",
    "Virginia": "va", "Washington": "wa", "West Virginia": "wv",
    "Wisconsin": "wi", "Wyoming": "wy",
}


class DocRecipe:
    """Plan for one synthetic page.

    ``mentions`` is an ordered list of phrases the page must contain;
    ``near_chain`` marks that each adjacent mention pair must fall within
    the NEAR window.  ``kind``/``primary`` drive URL and authority
    assignment.
    """

    __slots__ = ("kind", "primary", "mentions", "near_chain", "official")

    def __init__(self, kind, primary, mentions, near_chain=False, official=False):
        self.kind = kind
        self.primary = primary
        self.mentions = [str(m) for m in mentions]
        self.near_chain = near_chain
        self.official = official

    def __repr__(self):
        glue = " NEAR " if self.near_chain else " + "
        return "DocRecipe({}: {})".format(self.kind, glue.join(self.mentions))


def template_keyword_targets(seed):
    """Deterministic (keyword, state) NEAR page counts for the benchmarks.

    Each keyword co-occurs with a keyword-specific subset of states; counts
    are stable functions of the seed so repeated builds agree.
    """
    targets = {}
    state_names = [s.name for s in STATES]
    for keyword in TEMPLATE_KEYWORD_POOL:
        for state in state_names:
            # ~25% of (keyword, state) pairs co-occur at all.  Kept sparse
            # and small so keyword pages never dominate a small state's
            # total page count (which would distort the Query 2 ratios).
            if stable_uniform(seed, "kwsel", keyword, state) < 0.25:
                count = 1 + int(stable_uniform(seed, "kwcount", keyword, state) * 8)
                targets[(keyword, state)] = count
    return targets


class _MentionTally:
    """Counts scheduled pages per phrase, including sub-phrase containment.

    A page mentioning "West Virginia" also matches a search for
    "Virginia", and a page mentioning "Oklahoma City" matches "Oklahoma";
    the tally accounts for that so entity page deficits come out exact.
    """

    def __init__(self):
        self._mention_counts = {}  # token tuple -> number of pages

    def add_recipe(self, recipe):
        # A page counts once per distinct mention phrase it contains.
        for tokens in {tuple(phrase_tokens(m)) for m in recipe.mentions}:
            self._mention_counts[tokens] = self._mention_counts.get(tokens, 0) + 1

    def pages_matching(self, phrase):
        """Upper-bound count of scheduled pages containing *phrase*.

        Counts pages whose mention set includes a phrase containing
        *phrase* as a contiguous sub-sequence.  (A page with two distinct
        matching mentions is counted twice; calibration keeps mention sets
        disjoint enough that this does not occur.)
        """
        target = tuple(phrase_tokens(phrase))
        total = 0
        for tokens, count in self._mention_counts.items():
            if _contains_subsequence(tokens, target):
                total += count
        return total


def _contains_subsequence(haystack, needle):
    if len(needle) > len(haystack):
        return False
    span = len(needle)
    return any(
        haystack[i : i + span] == needle for i in range(len(haystack) - span + 1)
    )


def build_recipes(config):
    """Produce the full recipe list for a :class:`CorpusConfig`."""
    recipes = []
    tally = _MentionTally()

    def schedule(recipe):
        recipes.append(recipe)
        tally.add_recipe(recipe)

    def schedule_entity_pages(kind, name, target_pages, official_first=False):
        deficit = target_pages - tally.pages_matching(name)
        for i in range(max(0, deficit)):
            schedule(
                DocRecipe(kind, name, [name], official=(official_first and i == 0))
            )

    # 1. Co-occurrence pages (fixed counts; they also mention their entity).
    for state, target in FOUR_CORNERS_NEAR.items():
        for _ in range(max(1, round(target / config.near_scale))):
            schedule(DocRecipe("state", state, [state, "four corners"], near_chain=True))
    for sig in SIGS:
        for _ in range(sig.knuth_weight):
            schedule(DocRecipe("sig", sig.name, [sig.name, "Knuth"], near_chain=True))
    for (keyword, state), count in sorted(template_keyword_targets(config.seed).items()):
        for _ in range(count):
            schedule(DocRecipe("state", state, [state, keyword], near_chain=True))
    for state, count in SCUBA_STATES.items():
        for _ in range(count):
            schedule(DocRecipe("state", state, [state, "scuba diving"], near_chain=True))
    for state, movie, count in SCUBA_TRIPLES:
        for _ in range(count):
            schedule(
                DocRecipe(
                    "movie", movie, [state, "scuba diving", movie], near_chain=True
                )
            )
    for movie in MOVIES:
        for _ in range(movie.scuba_weight):
            schedule(
                DocRecipe("movie", movie.title, [movie.title, "scuba diving"], near_chain=True)
            )
    for field in CS_FIELDS:
        if field.sig_affinity:
            for _ in range(field.affinity_weight):
                schedule(
                    DocRecipe(
                        "field", field.name, [field.sig_affinity, field.name], near_chain=True
                    )
                )
    for keyword in TEMPLATE_KEYWORD_POOL + ["Knuth", "four corners", "scuba diving"]:
        for _ in range(KEYWORD_ONLY_PAGES):
            schedule(DocRecipe("keyword", keyword, [keyword]))

    # 2. Entity pages, topped up to their calibration targets.
    for sig in SIGS:
        schedule_entity_pages("sig", sig.name, sig.web_weight, official_first=True)
    for field in CS_FIELDS:
        schedule_entity_pages("field", field.name, field.web_weight)
    for movie in MOVIES:
        schedule_entity_pages("movie", movie.title, movie.web_weight, official_first=True)
    for state in STATES:
        schedule_entity_pages(
            "capital",
            state.capital,
            max(1, round(state.capital_web_weight / config.count_scale)),
        )
    # States last: their deficits net out capital pages ("Oklahoma City"
    # contains "Oklahoma"), sibling states ("West Virginia" contains
    # "Virginia"), and every keyword co-occurrence page scheduled above.
    # Longer names first, so "West Virginia" is scheduled before "Virginia"
    # and the containment deduction sees it.
    for state in sorted(
        STATES, key=lambda s: (-len(phrase_tokens(s.name)), s.name)
    ):
        schedule_entity_pages(
            "state",
            state.name,
            max(1, round(state.web_weight / config.count_scale)),
            official_first=True,
        )

    # 3. Background noise pages.
    for i in range(config.background_docs):
        schedule(DocRecipe("background", None, []))

    return recipes


def stable_shuffle(items, seed, label):
    """Deterministically permute *items* (independent of build order)."""
    return [
        item
        for _, item in sorted(
            (stable_hash(seed, label, i), item) for i, item in enumerate(items)
        )
    ]
