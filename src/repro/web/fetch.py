"""Page fetching for the crawler scenario (paper Section 4.2).

The paper sketches asynchronous iteration driving a Web crawler: "given a
table of thousands of URLs, a query over that table could be used to fetch
the HTML for each URL".  :class:`FetchService` plays the Web server side:
it renders a page's HTML from the corpus document, charges latency, and
exposes the outgoing links (for the next crawl round).
"""

import asyncio
import time

from repro.web.cache import ResultCache


class FetchResult:
    """Outcome of fetching one URL."""

    __slots__ = ("url", "status", "length", "title", "date", "links")

    def __init__(self, url, status, length, title, date, links):
        self.url = url
        self.status = status
        self.length = length
        self.title = title
        self.date = date
        self.links = links

    def __repr__(self):
        return "FetchResult({} -> {})".format(self.url, self.status)


def render_html(doc):
    """Synthesize the HTML of a corpus document."""
    body = " ".join(doc.tokens)
    anchors = "\n".join('<a href="http://{0}">{0}</a>'.format(u) for u in doc.links)
    return (
        "<html><head><title>{title}</title></head>\n"
        "<body>\n<p>{body}</p>\n{anchors}\n</body></html>\n"
    ).format(title=doc.title(), body=body, anchors=anchors)


class FetchService:
    """Fetch pages of the simulated Web with latency and optional caching."""

    def __init__(self, corpus, latency=None, cache=None):
        self.corpus = corpus
        self.latency = latency
        self.cache = cache
        self.requests_sent = 0

    def _cache_get(self, key):
        """Status-aware read: serves fresh *and* stale entries.

        Fetch results are plain values (a 404 is a :class:`FetchResult`,
        not an exception), so there is no failure-replay path here —
        the TTL policy alone decides how long a page stays cached.
        """
        if self.cache is None:
            return None
        lookup = getattr(self.cache, "lookup", None)
        if lookup is None:
            return self.cache.get(key)
        found = lookup(key)
        return found.value if found.hit else None

    def fetch(self, url):
        key = ResultCache.key("fetch", "fetch", url)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        delay = self._delay(url)
        self.requests_sent += 1
        if delay > 0:
            time.sleep(delay)
        result = self._resolve(url)
        if self.cache is not None:
            self.cache.put(key, result)
        return result

    async def fetch_async(self, url):
        key = ResultCache.key("fetch", "fetch", url)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        delay = self._delay(url)
        self.requests_sent += 1
        if delay > 0:
            await asyncio.sleep(delay)
        result = self._resolve(url)
        if self.cache is not None:
            self.cache.put(key, result)
        return result

    def _delay(self, url):
        if self.latency is None:
            return 0.0
        # Fetch latency is keyed per-URL: every URL is a distinct host.
        return self.latency.delay("fetch:{}".format(url), url)

    def _resolve(self, url):
        doc = self.corpus.lookup_url(url)
        if doc is None:
            return FetchResult(url, 404, 0, None, None, [])
        html = render_html(doc)
        return FetchResult(url, 200, len(html), doc.title(), doc.date, list(doc.links))
