"""The assembled simulated Web: one corpus, two engines, a fetch service.

``default_web()`` returns a process-wide cached instance built from the
default calibrated configuration — tests and benchmarks share it so the
(one-time) corpus build cost is paid once.
"""

from repro.web.corpus import CorpusConfig, build_corpus
from repro.web.engine import SearchEngine
from repro.web.fetch import FetchService
from repro.web.ranking import av_ranking, google_ranking

AV = "AV"
GOOGLE = "Google"


class SimulatedWeb:
    """Bundle of the corpus and the services WSQ talks to."""

    def __init__(self, config=None, corpus=None):
        self.config = config or CorpusConfig()
        self.corpus = corpus if corpus is not None else build_corpus(self.config)
        # AltaVista supports `near`; Google of the era did not (paper fn. 1).
        self.engines = {
            AV: SearchEngine(AV, self.corpus, av_ranking, supports_near=True),
            GOOGLE: SearchEngine(
                GOOGLE, self.corpus, google_ranking, supports_near=False
            ),
        }

    def engine(self, name):
        try:
            return self.engines[name]
        except KeyError:
            raise KeyError(
                "unknown engine {!r} (have: {})".format(name, sorted(self.engines))
            )

    def engine_names(self):
        return sorted(self.engines)

    def fetch_service(self, latency=None, cache=None):
        return FetchService(self.corpus, latency=latency, cache=cache)


_DEFAULT_WEB = None


def default_web():
    """The shared, lazily built default simulated Web."""
    global _DEFAULT_WEB
    if _DEFAULT_WEB is None:
        _DEFAULT_WEB = SimulatedWeb()
    return _DEFAULT_WEB
