"""Multi-tier search-result caching.

The paper notes (citing Hellerstein & Naughton [HN96]) that caching is
"very important" for plans that would otherwise re-issue identical
external calls — e.g. its Figure 7 plan sends |R| identical searches per
Sig.  This module grew from a single bounded LRU into a small caching
subsystem (DESIGN.md §11):

- :class:`ResultCache` — the shared in-memory LRU tier.  Entries carry a
  store timestamp on an injectable :class:`~repro.util.timing.Clock`, so
  a :class:`CachePolicy` can give each request *kind* (``count`` /
  ``search`` / ``fetch``) its own TTL, a serve-stale window
  (stale-while-revalidate-lite), and a shorter *negative* TTL for empty
  results and cached failures.  Hit/miss/stale/evict counters live on a
  :class:`~repro.obs.metrics.MetricsRegistry` (a private one by default;
  an engine re-binds the cache onto its own registry so ``stats()`` and
  ``metrics_snapshot()`` can never disagree).
- :class:`DiskCacheTier` — an optional persistent tier: pickle payloads
  written atomically (temp file + ``os.replace``) under versioned,
  hashed keys, validated on read so a format bump or hash collision can
  never resurrect a wrong value.
- :class:`TieredResultCache` — the stack: a per-query *scratch* tier
  (query-lifetime snapshot consistency: one query never sees two
  different answers for the same request, even across TTL expiry),
  then the shared memory tier, then the disk tier, with read-promotion
  upward and write-through downward.

All tiers speak the same protocol (``lookup``/``get``/``put``/
``put_failure``/``stats``), and are shared by the synchronous client,
the asynchronous request pump path, and the fetch service, so both
execution modes benefit equally.  The *coalescing* of concurrent
identical in-flight calls — which a completed-results cache cannot catch
— lives in :class:`~repro.asynciter.pump.RequestPump` (single-flight)
and :class:`~repro.asynciter.context.AsyncContext` (per-query dedup).
"""

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CACHE_EVICT, CACHE_HIT, CACHE_MISS, CACHE_STALE
from repro.util.timing import resolve_clock

#: Version stamp for persisted cache payloads.  Bump when the entry
#: format (or the semantics of cached values) changes: the disk tier
#: silently treats any other version as a miss, so stale-format files
#: age out instead of poisoning reads.
CACHE_FORMAT_VERSION = 1

#: Lookup statuses.
FRESH = "fresh"  # within TTL
STALE = "stale"  # past TTL but within the serve-stale window
NEGATIVE = "negative"  # a cached failure record
MISS = "miss"  # absent, expired, or unusable


class CachedFailure:
    """The value stored for a negatively-cached *failure*.

    Carries enough to replay a faithful error (type name + message)
    while staying trivially picklable for the disk tier.
    """

    __slots__ = ("error_type", "message")

    def __init__(self, error_type, message):
        self.error_type = error_type
        self.message = message

    def __repr__(self):
        return "CachedFailure({}: {})".format(self.error_type, self.message)


class CacheLookup:
    """Outcome of a tier lookup: a status plus the value (if usable)."""

    __slots__ = ("status", "value", "tier")

    def __init__(self, status, value=None, tier=None):
        self.status = status
        self.value = value
        self.tier = tier

    @property
    def hit(self):
        """True when ``value`` is a usable cached result (fresh or stale)."""
        return self.status in (FRESH, STALE)

    @property
    def failure(self):
        """True when the entry is a negatively-cached failure record."""
        return self.status == NEGATIVE

    def __repr__(self):
        return "CacheLookup({}, tier={})".format(self.status, self.tier)


_MISS = CacheLookup(MISS)


class CachePolicy:
    """Freshness policy: per-kind TTLs, staleness window, negative TTL.

    ``default_ttl``
        Seconds an entry stays fresh (``None`` = never expires — the
        historical unbounded-TTL behaviour, still the default).
    ``ttl_by_kind``
        Overrides per request kind: keys are the second element of a
        cache key (``"count"`` / ``"search"`` / ``"fetch"``), so
        ``WebCount`` answers can age out faster than page fetches.
    ``max_staleness``
        Serve-stale window: for ``ttl <= age < ttl + max_staleness`` the
        entry is still served (status :data:`STALE`, counted under
        ``cache.stale``) so hot keys keep answering while a refresh is
        due; past the window the entry is evicted and the lookup misses.
    ``negative_ttl``
        When set, *empty* results and failure records are cached for
        this (typically much shorter) duration instead — transient
        failures and empty result pages should not be pinned for the
        full positive TTL.  ``None`` disables failure caching entirely
        (empty results then age like any other value).
    """

    __slots__ = ("default_ttl", "ttl_by_kind", "max_staleness", "negative_ttl")

    def __init__(
        self,
        default_ttl=None,
        ttl_by_kind=None,
        max_staleness=0.0,
        negative_ttl=None,
    ):
        if max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if negative_ttl is not None and negative_ttl < 0:
            raise ValueError("negative_ttl must be >= 0 (or None)")
        self.default_ttl = default_ttl
        self.ttl_by_kind = dict(ttl_by_kind or {})
        self.max_staleness = max_staleness
        self.negative_ttl = negative_ttl

    def ttl_for(self, kind):
        return self.ttl_by_kind.get(kind, self.default_ttl)

    @staticmethod
    def kind_of(key):
        """The request kind encoded in a cache key (or ``None``)."""
        if isinstance(key, tuple) and len(key) >= 2:
            return key[1]
        return None

    def classify(self, entry, kind, now):
        """One entry's status at time *now*: FRESH/STALE/NEGATIVE/MISS.

        Boundary semantics (pinned by the TTL unit tests): an entry is
        fresh strictly *before* ``stored_at + ttl``, stale from exactly
        ``ttl`` up to (exclusive) ``ttl + max_staleness``, and expired
        from exactly ``ttl + max_staleness`` on.  Negative entries get
        no serve-stale window.
        """
        failure = isinstance(entry.value, CachedFailure)
        if entry.negative:
            ttl = self.negative_ttl
            if ttl is None:
                # Negative caching switched off after the entry was
                # stored: treat records as unusable, plain empties as
                # ordinary values.
                if failure:
                    return MISS
                ttl = self.ttl_for(kind)
        else:
            ttl = self.ttl_for(kind)
        status = NEGATIVE if failure else FRESH
        if ttl is None:
            return status
        age = now - entry.stored_at
        if age < ttl:
            return status
        if not entry.negative and age < ttl + self.max_staleness:
            return STALE
        return MISS

    def __repr__(self):
        return (
            "CachePolicy(default_ttl={!r}, ttl_by_kind={!r}, "
            "max_staleness={!r}, negative_ttl={!r})".format(
                self.default_ttl,
                self.ttl_by_kind,
                self.max_staleness,
                self.negative_ttl,
            )
        )


#: The historical behaviour: nothing ever expires, no negative caching.
DEFAULT_POLICY = CachePolicy()


class _Entry:
    __slots__ = ("value", "stored_at", "negative")

    def __init__(self, value, stored_at, negative=False):
        self.value = value
        self.stored_at = stored_at
        self.negative = negative


def _is_empty_result(value):
    """True for result payloads negative caching treats as 'empty'."""
    return isinstance(value, (list, tuple, dict, set)) and len(value) == 0


class _TierTelemetry:
    """Shared counter/trace plumbing for all tiers.

    Counters are ``cache.{hit,miss,stale,evict,store}`` labelled by
    ``tier``; the registry is private by default and re-bindable via
    :meth:`attach_observability` (existing counts migrate, so a cache
    wired into an engine's registry after warm-up stays consistent).
    """

    _COUNTERS = ("cache.hit", "cache.miss", "cache.stale", "cache.evict", "cache.store")

    def __init__(self, tier, metrics=None, tracer=None):
        self.tier = tier
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer

    def count(self, name, amount=1):
        self.metrics.counter(name, tier=self.tier).inc(amount)

    def value(self, name):
        return self.metrics.counter_value(name, tier=self.tier)

    def trace(self, event, key, **args):
        tracer = self.tracer
        if tracer is not None:
            destination = None
            if isinstance(key, tuple) and key:
                destination = str(key[0])
            tracer.emit(
                event, destination=destination, tier=self.tier, key=str(key), **args
            )

    def attach_observability(self, metrics=None, tracer=None):
        if metrics is not None and metrics is not self.metrics:
            for name in self._COUNTERS:
                moved = self.value(name)
                if moved:
                    metrics.counter(name, tier=self.tier).inc(moved)
            self.metrics = metrics
        if tracer is not None:
            self.tracer = tracer


class ResultCache:
    """The shared in-memory tier: a bounded LRU with TTL + staleness.

    Backwards compatible with the original 52-line cache: ``get``/
    ``put``/``stats()``/``hits``/``misses`` keep their exact shapes, and
    the default :class:`CachePolicy` never expires anything.  New
    surface: :meth:`lookup` (status-carrying), :meth:`put_failure`
    (negative caching), an injectable ``clock``, and metrics-backed
    counters (the hit/miss fields used to be racy-by-design plain ints;
    they are now views over :class:`~repro.obs.metrics.MetricsRegistry`
    counters, so ``stats()`` and an engine's ``metrics_snapshot()``
    read the same storage).
    """

    tier_name = "memory"

    def __init__(
        self, capacity=None, policy=None, clock=None, metrics=None, tracer=None
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be positive (or None)")
        self.capacity = capacity
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.clock = resolve_clock(clock)
        self.telemetry = _TierTelemetry(self.tier_name, metrics, tracer)
        self._lock = threading.Lock()
        self._entries = OrderedDict()

    # -- legacy counter surface ----------------------------------------------

    @property
    def metrics(self):
        return self.telemetry.metrics

    @property
    def hits(self):
        """Value-returning lookups (fresh + stale serves)."""
        return self.telemetry.value("cache.hit") + self.telemetry.value("cache.stale")

    @property
    def misses(self):
        return self.telemetry.value("cache.miss")

    @property
    def stale_hits(self):
        return self.telemetry.value("cache.stale")

    @property
    def evictions(self):
        return self.telemetry.value("cache.evict")

    @staticmethod
    def key(engine_name, kind, expr_text, limit=None):
        return (engine_name, kind, expr_text, limit)

    # -- lookups ---------------------------------------------------------------

    def lookup(self, key):
        """Status-carrying lookup; counts hit/miss/stale and evicts lazily."""
        now = self.clock.now()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                status = MISS
            else:
                status = self.policy.classify(entry, CachePolicy.kind_of(key), now)
                if status == MISS:
                    del self._entries[key]  # expired: lazy eviction
                else:
                    self._entries.move_to_end(key)
            value = entry.value if (entry is not None and status != MISS) else None
        if status == FRESH or status == NEGATIVE:
            self.telemetry.count("cache.hit")
            self.telemetry.trace(CACHE_HIT, key, status=status)
        elif status == STALE:
            self.telemetry.count("cache.stale")
            self.telemetry.trace(CACHE_STALE, key)
        else:
            if entry is not None:
                self.telemetry.count("cache.evict")
                self.telemetry.trace(CACHE_EVICT, key, reason="expired")
            self.telemetry.count("cache.miss")
            self.telemetry.trace(CACHE_MISS, key)
        if status == MISS:
            return _MISS
        return CacheLookup(status, value, tier=self.tier_name)

    def get(self, key):
        """Return the cached value or ``None`` (misses are counted).

        The historical surface: failure records read as misses here —
        only :meth:`lookup` callers opt into negative-result replay.
        """
        found = self.lookup(key)
        if found.hit:
            return found.value
        return None

    # -- stores ---------------------------------------------------------------

    def put(self, key, value):
        negative = (
            self.policy.negative_ttl is not None and _is_empty_result(value)
        )
        self._store(key, value, negative)

    def put_failure(self, key, error):
        """Negatively cache a failed request (no-op without a negative TTL)."""
        if self.policy.negative_ttl is None:
            return False
        self._store(
            key, CachedFailure(type(error).__name__, str(error)), negative=True
        )
        return True

    def _store(self, key, value, negative):
        evicted = 0
        with self._lock:
            self._entries[key] = _Entry(value, self.clock.now(), negative)
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    evicted += 1
        self.telemetry.count("cache.store")
        if evicted:
            self.telemetry.count("cache.evict", evicted)
            self.telemetry.trace(CACHE_EVICT, key, reason="capacity", count=evicted)

    # -- maintenance -----------------------------------------------------------

    def purge_expired(self):
        """Eagerly drop every expired entry; returns the count removed."""
        now = self.clock.now()
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if self.policy.classify(entry, CachePolicy.kind_of(key), now) == MISS
            ]
            for key in doomed:
                del self._entries[key]
        if doomed:
            self.telemetry.count("cache.evict", len(doomed))
        return len(doomed)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def clear(self):
        with self._lock:
            self._entries.clear()

    # -- statistics ------------------------------------------------------------

    def stats(self):
        """The historical three-field shape (regression-pinned)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    def detailed_stats(self):
        """Everything: per-outcome counters plus the legacy fields."""
        payload = self.stats()
        payload.update(
            {
                "stale_hits": self.stale_hits,
                "evictions": self.evictions,
                "stores": self.telemetry.value("cache.store"),
                "hit_ratio": self.hit_ratio(),
                "tier": self.tier_name,
            }
        )
        return payload

    def hit_ratio(self):
        """Observed hit fraction in [0, 1] (0.0 before any traffic)."""
        hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def attach_observability(self, metrics=None, tracer=None):
        """Re-bind counters onto an engine's registry (counts migrate)."""
        self.telemetry.attach_observability(metrics, tracer)


class DiskCacheTier:
    """Persistent cache tier: one pickle file per key, written atomically.

    Keys are hashed (SHA-256 over the repr plus the format version) into
    flat filenames; each payload embeds the format version and the full
    key repr, both verified on read, so hash collisions and format bumps
    degrade to misses rather than wrong answers.  Writes go through a
    temp file in the same directory plus ``os.replace``, so a reader can
    never observe a torn entry and a crash mid-write leaves the previous
    value intact.
    """

    tier_name = "disk"
    _SUFFIX = ".wsqc"

    def __init__(self, path, policy=None, clock=None, metrics=None, tracer=None):
        self.path = str(path)
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.clock = resolve_clock(clock)
        self.telemetry = _TierTelemetry(self.tier_name, metrics, tracer)
        os.makedirs(self.path, exist_ok=True)

    @property
    def metrics(self):
        return self.telemetry.metrics

    @property
    def hits(self):
        return self.telemetry.value("cache.hit") + self.telemetry.value("cache.stale")

    @property
    def misses(self):
        return self.telemetry.value("cache.miss")

    def _path_for(self, key):
        digest = hashlib.sha256(
            "v{}:{!r}".format(CACHE_FORMAT_VERSION, key).encode("utf-8")
        ).hexdigest()
        return os.path.join(self.path, digest + self._SUFFIX)

    # -- lookups ---------------------------------------------------------------

    def lookup(self, key):
        path = self._path_for(key)
        payload = None
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            payload = None
        entry = None
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_FORMAT_VERSION
            and payload.get("key") == repr(key)
        ):
            entry = _Entry(
                payload.get("value"),
                payload.get("stored_at", 0.0),
                bool(payload.get("negative", False)),
            )
        if entry is None:
            self.telemetry.count("cache.miss")
            return _MISS
        status = self.policy.classify(
            entry, CachePolicy.kind_of(key), self.clock.now()
        )
        if status == MISS:
            self._unlink(path)
            self.telemetry.count("cache.evict")
            self.telemetry.trace(CACHE_EVICT, key, reason="expired")
            self.telemetry.count("cache.miss")
            self.telemetry.trace(CACHE_MISS, key)
            return _MISS
        if status == STALE:
            self.telemetry.count("cache.stale")
            self.telemetry.trace(CACHE_STALE, key)
        else:
            self.telemetry.count("cache.hit")
            self.telemetry.trace(CACHE_HIT, key, status=status)
        return CacheLookup(status, entry.value, tier=self.tier_name)

    def get(self, key):
        found = self.lookup(key)
        return found.value if found.hit else None

    # -- stores ---------------------------------------------------------------

    def put(self, key, value, negative=None):
        if negative is None:
            negative = (
                self.policy.negative_ttl is not None and _is_empty_result(value)
            )
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": repr(key),
            "stored_at": self.clock.now(),
            "negative": bool(negative),
            "value": value,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception:  # noqa: BLE001 - unpicklable values just skip the tier
            return False
        path = self._path_for(key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=".tmp-", suffix=self._SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(temp_path, path)  # atomic on POSIX and Windows
        except OSError:
            self._unlink(temp_path)
            return False
        self.telemetry.count("cache.store")
        return True

    def put_failure(self, key, error):
        if self.policy.negative_ttl is None:
            return False
        return self.put(
            key, CachedFailure(type(error).__name__, str(error)), negative=True
        )

    # -- maintenance -----------------------------------------------------------

    def _files(self):
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        return [n for n in names if n.endswith(self._SUFFIX) and not n.startswith(".")]

    @staticmethod
    def _unlink(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def __len__(self):
        return len(self._files())

    def clear(self):
        for name in self._files():
            self._unlink(os.path.join(self.path, name))

    def stats(self):
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}

    def detailed_stats(self):
        payload = self.stats()
        payload.update(
            {
                "stale_hits": self.telemetry.value("cache.stale"),
                "evictions": self.telemetry.value("cache.evict"),
                "stores": self.telemetry.value("cache.store"),
                "tier": self.tier_name,
                "path": self.path,
            }
        )
        return payload

    def attach_observability(self, metrics=None, tracer=None):
        self.telemetry.attach_observability(metrics, tracer)


class TieredResultCache:
    """The cache stack: per-query scratch → shared memory → disk.

    Reads walk downward and *promote* lower-tier hits upward (a disk hit
    refills the memory LRU; any hit lands in the active query's scratch
    dict).  Writes go through every tier.  The scratch tier is scoped by
    :meth:`query_scope` (the engine wraps each query in one): it gives a
    single query snapshot consistency — once a query has seen an answer
    for a key, it keeps seeing that answer even if the shared tiers
    expire or evict mid-query — and makes repeated identical calls
    within one query free without touching shared-tier locks.
    """

    tier_name = "tiered"
    key = staticmethod(ResultCache.key)

    def __init__(
        self,
        capacity=None,
        policy=None,
        disk_path=None,
        clock=None,
        metrics=None,
        tracer=None,
        scratch=True,
        memory=None,
        disk=None,
    ):
        clock = resolve_clock(clock)
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.memory = (
            memory
            if memory is not None
            else ResultCache(
                capacity=capacity,
                policy=self.policy,
                clock=clock,
                metrics=metrics,
                tracer=tracer,
            )
        )
        if disk is None and disk_path is not None:
            disk = DiskCacheTier(
                disk_path,
                policy=self.policy,
                clock=clock,
                metrics=metrics if metrics is not None else self.memory.metrics,
                tracer=tracer,
            )
        self.disk = disk
        self.scratch_enabled = scratch
        self.telemetry = _TierTelemetry(
            "scratch", metrics if metrics is not None else self.memory.metrics, tracer
        )
        self._local = threading.local()

    # -- scratch tier ----------------------------------------------------------

    def _scratch(self):
        if not self.scratch_enabled:
            return None
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def query_scope(self):
        """Activate a per-query scratch tier on this thread."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append({})
        try:
            yield self
        finally:
            stack.pop()

    # -- lookups ---------------------------------------------------------------

    def lookup(self, key):
        scratch = self._scratch()
        if scratch is not None and key in scratch:
            self.telemetry.count("cache.hit")
            self.telemetry.trace(CACHE_HIT, key, status=FRESH)
            value = scratch[key]
            if isinstance(value, CachedFailure):
                return CacheLookup(NEGATIVE, value, tier="scratch")
            return CacheLookup(FRESH, value, tier="scratch")
        found = self.memory.lookup(key)
        if found.hit or found.failure:
            if scratch is not None:
                scratch[key] = found.value
            return found
        if self.disk is not None:
            found = self.disk.lookup(key)
            if found.hit or found.failure:
                # Promote: refill the memory LRU so the next reader stays
                # off disk (store the raw value; negativity re-derives).
                if found.failure:
                    self.memory._store(key, found.value, negative=True)
                else:
                    self.memory.put(key, found.value)
                if scratch is not None:
                    scratch[key] = found.value
                return found
        return _MISS

    def get(self, key):
        found = self.lookup(key)
        return found.value if found.hit else None

    # -- stores ---------------------------------------------------------------

    def put(self, key, value):
        scratch = self._scratch()
        if scratch is not None:
            scratch[key] = value
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def put_failure(self, key, error):
        stored = self.memory.put_failure(key, error)
        if self.disk is not None:
            self.disk.put_failure(key, error)
        return stored

    # -- statistics / maintenance ---------------------------------------------

    @property
    def metrics(self):
        return self.memory.metrics

    @property
    def hits(self):
        total = self.memory.hits + self.telemetry.value("cache.hit")
        if self.disk is not None:
            total += self.disk.hits
        return total

    @property
    def misses(self):
        """Lookups no tier could serve (the deepest tier's misses)."""
        return self.disk.misses if self.disk is not None else self.memory.misses

    def hit_ratio(self):
        hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def __len__(self):
        return len(self.memory)

    def clear(self):
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].clear()

    def stats(self):
        return {"hits": self.hits, "misses": self.misses, "size": len(self.memory)}

    def detailed_stats(self):
        payload = self.stats()
        payload["hit_ratio"] = self.hit_ratio()
        payload["tiers"] = {
            "scratch": {"hits": self.telemetry.value("cache.hit")},
            "memory": self.memory.detailed_stats(),
        }
        if self.disk is not None:
            payload["tiers"]["disk"] = self.disk.detailed_stats()
        return payload

    def attach_observability(self, metrics=None, tracer=None):
        self.memory.attach_observability(metrics, tracer)
        if self.disk is not None:
            self.disk.attach_observability(metrics, tracer)
        self.telemetry.attach_observability(metrics, tracer)


def make_cache(
    tier="memory",
    capacity=None,
    ttl=None,
    max_staleness=0.0,
    negative_ttl=None,
    disk_path=None,
    clock=None,
):
    """Build a cache for a tier name (the CLI/env entry point).

    ``tier``: ``"off"``/``"none"`` → ``None``; ``"memory"`` → a plain
    :class:`ResultCache`; ``"tiered"`` → scratch+memory;
    ``"disk"`` → scratch+memory+disk (``disk_path`` defaults to
    ``.wsq-cache`` under the working directory).
    """
    if tier in (None, "off", "none", ""):
        return None
    policy = CachePolicy(
        default_ttl=ttl, max_staleness=max_staleness, negative_ttl=negative_ttl
    )
    if tier == "memory":
        return ResultCache(capacity=capacity, policy=policy, clock=clock)
    if tier == "tiered":
        return TieredResultCache(capacity=capacity, policy=policy, clock=clock)
    if tier == "disk":
        return TieredResultCache(
            capacity=capacity,
            policy=policy,
            clock=clock,
            disk_path=disk_path if disk_path is not None else ".wsq-cache",
        )
    raise ValueError(
        "unknown cache tier {!r}; expected off/memory/tiered/disk".format(tier)
    )


def cache_from_env(environ=None):
    """The cache the ``REPRO_CACHE`` environment variable asks for.

    ``REPRO_CACHE=memory|tiered|disk`` forces a default cache into every
    engine that did not configure one — the CI transparency leg runs the
    whole suite this way to prove caching never changes query results.
    Unset/empty/``off`` → ``None``.
    """
    if environ is None:
        environ = os.environ
    spec = environ.get("REPRO_CACHE", "").strip().lower()
    if spec in ("", "off", "none", "0"):
        return None
    ttl = environ.get("REPRO_CACHE_TTL", "").strip()
    return make_cache(tier=spec, ttl=float(ttl) if ttl else None)
