"""Search-result caching.

The paper notes (citing Hellerstein & Naughton [HN96]) that caching is
"very important" for plans that would otherwise re-issue identical
external calls — e.g. its Figure 7 plan sends |R| identical searches per
Sig.  :class:`ResultCache` memoizes completed calls by
``(engine, kind, expression, limit)`` with optional capacity (LRU) and
hit/miss statistics, and is shared by the synchronous client and the
request pump so both execution modes benefit equally.
"""

from collections import OrderedDict


class ResultCache:
    """A bounded LRU cache for search-engine responses."""

    def __init__(self, capacity=None):
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be positive (or None)")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(engine_name, kind, expr_text, limit=None):
        return (engine_name, kind, expr_text, limit)

    def get(self, key):
        """Return the cached value or ``None`` (misses are counted)."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key, value):
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)

    def clear(self):
        self._entries.clear()

    def stats(self):
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}
