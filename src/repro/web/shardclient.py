"""Scatter-gather client for a sharded search engine.

:class:`ShardedSearchClient` is the *network* half of the sharded
search tier (:mod:`repro.web.sharding` is the compute half).  It is a
drop-in :class:`~repro.web.client.SearchClient`: the vtables, the
request pump, the cache, and the cost model all keep talking to one
destination (the engine name) — internally every ``count``/``search``
scatters one probe per shard, charges per-shard latency keyed on the
destination ``{engine}:shard{i}``, gathers the partials, and merges
them exactly (count summation, deterministic top-k merge).

Resilience is per shard:

- every probe passes a per-shard :class:`CircuitBreaker` gate and a
  per-shard fault gate (the :class:`~repro.web.faults.FaultModel` keys
  draws on the shard destination, so ``begin_outage("AV:shard2")``
  takes down exactly one shard);
- OUTAGE-class probe failures (shard down, breaker open) *degrade*: the
  gather proceeds without that shard and reports a partial result —
  the paper-era alternative, failing the whole query because 1/N of
  the corpus is unreachable, is exactly what scatter-gather brokers
  exist to avoid.  Anything else (hard errors, exhausted transients)
  propagates, so the on_error/retry semantics of the unsharded client
  are preserved;
- retries wrap the *scatter* (the same
  :func:`~repro.asynciter.resilience.run_sync_with_retries` loop and
  backoff keys the unsharded client uses); per-shard fault draws are
  keyed on the scatter attempt, so a retry re-draws every shard.

Hedged requests (async path only — the sync baseline is sequential, a
backup probe could never overlap): once enough service-time samples
accumulate for a shard, a probe that has not answered within that
shard's observed p95 gets a **backup probe to a replica** of the same
shard (latency/fault draws keyed on ``{dest}~hedge``).  First success
wins; the loser is cancelled (or, if it already settled, simply
dropped) with exact accounting::

    hedges_issued == hedges_won + hedges_lost
    hedge_cancels + hedge_losers_settled == hedges_issued

Replica probes compute the same partial from the same shard index, so
hedging can never change a result — only its latency.
"""

import asyncio
import time
from collections import deque

from repro.asynciter.resilience import CircuitBreaker
from repro.obs.trace import (
    SHARD_GATHER,
    SHARD_HEDGE,
    SHARD_OUTAGE,
    SHARD_SCATTER,
)
from repro.util.errors import (
    BreakerOpenError,
    EngineOutageError,
    RequestTimeoutError,
)
from repro.web.cache import ResultCache
from repro.web.client import SearchClient
from repro.web.faults import HANG, OUTAGE, Fault
from repro.web.sharding import (
    merge_count_partials,
    merge_search_partials,
    shard_destination,
)

#: Probe failures that degrade to a partial gather instead of failing
#: the whole scatter: the shard (or its breaker) says "down", and the
#: other shards still hold (N-1)/N of the corpus.
DEGRADABLE_ERRORS = (EngineOutageError, BreakerOpenError)

#: Service-time samples retained per shard for the hedge-delay estimate.
SAMPLE_WINDOW = 64

#: Samples required before hedging arms for a shard (a p95 from fewer
#: observations is noise).
DEFAULT_HEDGE_MIN_SAMPLES = 8


def _p95(samples):
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))]


class ShardedSearchClient(SearchClient):
    """Latency-charging scatter-gather access to a sharded engine.

    *engine* must be a
    :class:`~repro.web.sharding.ShardedSearchEngine`.  All other
    parameters match :class:`~repro.web.client.SearchClient`;
    additionally:

    ``hedge``
        Master switch for hedged requests (default on; they only arm
        once per-shard samples accumulate anyway).
    ``hedge_delay``
        Fixed hedge trigger in seconds, overriding the calibrated
        per-shard p95 (tests pin this for determinism).
    ``hedge_min_samples``
        Observations required per shard before the calibrated trigger
        arms.
    """

    def __init__(
        self,
        engine,
        latency=None,
        cache=None,
        page_size=10,
        faults=None,
        resilience=None,
        obs=None,
        hedge=True,
        hedge_delay=None,
        hedge_min_samples=DEFAULT_HEDGE_MIN_SAMPLES,
    ):
        super().__init__(
            engine,
            latency=latency,
            cache=cache,
            page_size=page_size,
            faults=faults,
            resilience=resilience,
            obs=obs,
        )
        self.num_shards = engine.num_shards
        self.hedge = hedge
        self.hedge_delay = hedge_delay
        self.hedge_min_samples = hedge_min_samples
        self.destinations = [
            shard_destination(engine.name, shard_id)
            for shard_id in range(self.num_shards)
        ]
        breaker_config = (
            resilience.breaker if resilience is not None else None
        )
        self._breakers = (
            {dest: CircuitBreaker(dest, breaker_config) for dest in self.destinations}
            if breaker_config is not None
            else {}
        )
        self._samples = {dest: deque(maxlen=SAMPLE_WINDOW) for dest in self.destinations}
        self._per_shard = {
            dest: {
                "requests": 0,
                "failures": 0,
                "degraded": 0,
                "hedges_issued": 0,
                "hedges_won": 0,
            }
            for dest in self.destinations
        }
        # Scatter/hedge accounting (the invariants the tests pin).
        self.scatters = 0
        self.degraded_gathers = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_lost = 0
        self.hedge_cancels = 0
        self.hedge_losers_settled = 0

    # -- synchronous scatter (sequential baseline) ----------------------------

    def count(self, expr_text):
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached

        def attempt(n):
            return self._scatter_sync(expr_text, "count", None, n)

        result = self._retry_with_failure_caching(key, expr_text, attempt)
        self._cache_put(key, result)
        return result

    def search(self, expr_text, limit):
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached

        def attempt(n):
            return self._scatter_sync(expr_text, "search", limit, n)

        result = self._retry_with_failure_caching(key, expr_text, attempt)
        self._cache_put(key, result)
        return result

    # -- asynchronous scatter (request pump) ----------------------------------

    async def count_async(self, expr_text, attempt=0):
        key = ResultCache.key(self.engine.name, "count", expr_text)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        result = await self._scatter_async(expr_text, "count", None, attempt)
        self._cache_put(key, result)
        return result

    async def search_async(self, expr_text, limit, attempt=0):
        key = ResultCache.key(self.engine.name, "search", expr_text, limit)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        result = await self._scatter_async(expr_text, "search", limit, attempt)
        self._cache_put(key, result)
        return result

    # -- the scatter ----------------------------------------------------------

    def _scatter_sync(self, expr_text, kind, limit, attempt):
        """One sequential scatter attempt: probe every shard in order.

        Degradable failures are collected; anything else fails the
        attempt immediately (the outer retry loop decides what happens
        next, exactly as for the unsharded client).
        """
        self._emit_scatter(kind, expr_text)
        expression = self.engine.parse(expr_text)
        partials, failures = [], []
        for shard_id in range(self.num_shards):
            try:
                partials.append(
                    self._probe_sync(shard_id, expression, expr_text, kind, limit, attempt)
                )
            except DEGRADABLE_ERRORS as exc:
                failures.append((shard_id, exc))
        return self._gather(kind, expr_text, limit, partials, failures)

    async def _scatter_async(self, expr_text, kind, limit, attempt):
        """One concurrent scatter attempt: all shard probes in flight.

        Probes run as sibling tasks (the whole point — per-shard waits
        overlap), each with its own hedge race.  Cancellation of the
        scatter (pump timeout, deadline) cancels every outstanding
        probe before propagating, so no shard task outlives its call.
        """
        self._emit_scatter(kind, expr_text)
        expression = self.engine.parse(expr_text)
        tasks = [
            asyncio.ensure_future(
                self._probe_async(shard_id, expression, expr_text, kind, limit, attempt)
            )
            for shard_id in range(self.num_shards)
        ]
        try:
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        partials, failures = [], []
        for shard_id, outcome in enumerate(outcomes):
            if isinstance(outcome, DEGRADABLE_ERRORS):
                failures.append((shard_id, outcome))
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                partials.append(outcome)
        return self._gather(kind, expr_text, limit, partials, failures)

    def _gather(self, kind, expr_text, limit, partials, failures):
        """Merge partials; degrade (or fail) according to what came back."""
        for shard_id, exc in failures:
            dest = self.destinations[shard_id]
            self._per_shard[dest]["degraded"] += 1
            self._emit(
                SHARD_OUTAGE,
                destination=dest,
                error=type(exc).__name__,
                kind=kind,
                expr=expr_text,
            )
        if failures and not partials:
            raise failures[0][1]
        if failures:
            self.degraded_gathers += 1
        self._emit(
            SHARD_GATHER,
            destination=self.engine.name,
            kind=kind,
            expr=expr_text,
            ok=len(partials),
            failed=len(failures),
            degraded=bool(failures),
        )
        if kind == "count":
            return merge_count_partials(partials)
        return merge_search_partials(partials, limit)

    def _emit_scatter(self, kind, expr_text):
        self.scatters += 1
        self._emit(
            SHARD_SCATTER,
            destination=self.engine.name,
            kind=kind,
            expr=expr_text,
            shards=self.num_shards,
        )

    # -- one shard probe ------------------------------------------------------

    def _probe_sync(self, shard_id, expression, expr_text, kind, limit, attempt):
        dest = self.destinations[shard_id]
        self._breaker_gate(dest)
        started = time.monotonic()
        try:
            self._shard_fault_gate_sync(dest, expr_text, attempt)
            for _ in range(self._round_trips(kind, limit)):
                self._shard_sleep_sync(dest, expr_text)
            partial = self._compute(shard_id, expression, kind, limit)
        except Exception:
            self._record_outcome(dest, ok=False)
            raise
        self._record_outcome(dest, ok=True, elapsed=time.monotonic() - started)
        return partial

    async def _probe_async(self, shard_id, expression, expr_text, kind, limit, attempt):
        """One shard's probe, hedged: primary now, backup after the trigger.

        The hedge trigger is the shard's observed p95 service time (or
        the pinned ``hedge_delay``); until enough samples exist the
        probe runs unhedged.  First successful replica wins the race;
        the loser is cancelled and awaited, so the probe never leaks a
        task.  Both replicas failing re-raises the primary's error.
        """
        dest = self.destinations[shard_id]
        self._breaker_gate(dest)
        started = time.monotonic()
        trigger = self._hedge_trigger(dest)
        primary = asyncio.ensure_future(
            self._probe_once_async(shard_id, dest, expression, expr_text, kind, limit, attempt)
        )
        racers = {primary: "primary"}
        try:
            if trigger is not None:
                done, _ = await asyncio.wait({primary}, timeout=trigger)
                if not done:
                    self.hedges_issued += 1
                    self._per_shard[dest]["hedges_issued"] += 1
                    self._emit(
                        SHARD_HEDGE,
                        destination=dest,
                        kind=kind,
                        expr=expr_text,
                        delay=trigger,
                    )
                    backup = asyncio.ensure_future(
                        self._probe_once_async(
                            shard_id,
                            dest + "~hedge",
                            expression,
                            expr_text,
                            kind,
                            limit,
                            attempt,
                        )
                    )
                    racers[backup] = "backup"
            winner, partial = await self._race(racers, primary)
        except asyncio.CancelledError:
            for task in racers:
                task.cancel()
            await asyncio.gather(*racers, return_exceptions=True)
            if len(racers) > 1:
                # The scatter itself was cancelled with a hedge in
                # flight: the backup settles as a cancelled loser so
                # the accounting identities still balance.
                self.hedges_lost += 1
                self.hedge_cancels += 1
            raise
        except Exception:
            self._record_outcome(dest, ok=False)
            raise
        if len(racers) > 1:
            if winner == "backup":
                self.hedges_won += 1
                self._per_shard[dest]["hedges_won"] += 1
            else:
                self.hedges_lost += 1
        self._record_outcome(dest, ok=True, elapsed=time.monotonic() - started)
        return partial

    async def _race(self, racers, primary):
        """First successful racer wins; settle (and account for) the rest.

        Returns ``(role, result)``.  With every racer failed, re-raise
        the primary's error — the hedge was a latency bet, it must not
        change *which* error a doomed probe reports.
        """
        pending = set(racers)
        winner = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            # Iterate in racer (primary-first) order: when both replicas
            # settle in the same wake-up, the primary wins the tie, so
            # the won/lost tallies are deterministic.
            for task in racers:
                if task in done and task.exception() is None and winner is None:
                    winner = task
        if winner is None:
            if len(racers) > 1:
                # Both replicas failed: the backup is the settled loser.
                self.hedges_lost += 1
                self.hedge_losers_settled += 1
            return ("primary", self._reraise_primary(racers, primary))
        for task in pending:
            if task.cancel():
                self.hedge_cancels += 1
            else:
                self.hedge_losers_settled += 1
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        settled_losers = [
            task for task in racers if task is not winner and task.done() and task not in pending
        ]
        self.hedge_losers_settled += len(settled_losers)
        return (racers[winner], winner.result())

    def _reraise_primary(self, racers, primary):
        for task in racers:
            if task is not primary and not task.done():
                task.cancel()
        raise primary.exception()

    async def _probe_once_async(
        self, shard_id, fault_dest, expression, expr_text, kind, limit, attempt
    ):
        """One replica's attempt: fault gate, latency waits, compute.

        ``fault_dest`` keys the latency and fault draws — the primary
        uses the shard destination, a hedge backup uses
        ``{dest}~hedge`` (a different replica of the same shard, so its
        network weather is independent).  The computed partial is
        identical either way.
        """
        await self._shard_fault_gate_async(fault_dest, expr_text, attempt)
        for _ in range(self._round_trips(kind, limit)):
            await self._shard_sleep_async(fault_dest, expr_text)
        return self._compute(shard_id, expression, kind, limit)

    def _compute(self, shard_id, expression, kind, limit):
        if kind == "count":
            return self.engine.shard_count(shard_id, expression)
        return self.engine.shard_search_partials(shard_id, expression, limit)

    def _round_trips(self, kind, limit):
        # A count is one request per shard; a ranked probe pages through
        # up to *limit* candidates per shard (each shard may hold the
        # entire global top-k), sequentially, like the unsharded client.
        if kind == "count":
            return 1
        return self._pages_for(limit)

    # -- per-shard network simulation -----------------------------------------

    def _shard_delay(self, dest, expr_text):
        if self.latency is None:
            return 0.0
        return self.latency.delay(dest, expr_text)

    def _shard_sleep_sync(self, dest, expr_text):
        self._count_shard_round_trip(dest)
        delay = self._shard_delay(dest, expr_text)
        if delay > 0:
            time.sleep(delay)

    async def _shard_sleep_async(self, dest, expr_text):
        self._count_shard_round_trip(dest)
        delay = self._shard_delay(dest, expr_text)
        if delay > 0:
            await asyncio.sleep(delay)

    def _count_shard_round_trip(self, dest):
        self.requests_sent += 1
        base = dest.split("~", 1)[0]
        if base in self._per_shard:
            self._per_shard[base]["requests"] += 1
        if self.obs is not None:
            self.obs.metrics.inc("web.round_trips", engine=self.engine.name)
            self.obs.metrics.inc("shard.round_trips", destination=dest)

    def _shard_fault(self, dest, expr_text, attempt):
        if self.faults is None:
            return None
        # A whole-engine outage window downs every shard at once; the
        # per-destination draw covers single-shard weather.
        if self.faults.is_down(self.engine.name) and not self.faults.is_down(dest):
            self.faults_seen += 1
            return Fault(
                OUTAGE,
                EngineOutageError(
                    "engine {!r} is down (connection refused)".format(self.engine.name)
                ),
            )
        fault = self.faults.fault_for(dest, expr_text, attempt)
        if fault is not None:
            self.faults_seen += 1
        return fault

    def _shard_fault_gate_sync(self, dest, expr_text, attempt):
        fault = self._shard_fault(dest, expr_text, attempt)
        if fault is None:
            return
        if fault.kind == OUTAGE:
            raise fault.error
        if fault.kind == HANG:
            self._count_shard_round_trip(dest)
            timeout = (
                self.resilience.call_timeout if self.resilience is not None else None
            )
            wait = (
                fault.hang_seconds
                if timeout is None
                else min(fault.hang_seconds, timeout)
            )
            if wait > 0:
                time.sleep(wait)
            raise RequestTimeoutError(
                "request to {!r} for {!r} hung (gave up after {:.3f}s)".format(
                    dest, expr_text, wait
                )
            )
        self._count_shard_round_trip(dest)
        delay = self._shard_delay(dest, expr_text)
        if delay > 0:
            time.sleep(delay)
        raise fault.error

    async def _shard_fault_gate_async(self, dest, expr_text, attempt):
        fault = self._shard_fault(dest, expr_text, attempt)
        if fault is None:
            return
        if fault.kind == OUTAGE:
            raise fault.error
        if fault.kind == HANG:
            self._count_shard_round_trip(dest)
            if fault.hang_seconds > 0:
                await asyncio.sleep(fault.hang_seconds)
            raise RequestTimeoutError(
                "request to {!r} for {!r} hung (gave up after {:.3f}s)".format(
                    dest, expr_text, fault.hang_seconds
                )
            )
        self._count_shard_round_trip(dest)
        delay = self._shard_delay(dest, expr_text)
        if delay > 0:
            await asyncio.sleep(delay)
        raise fault.error

    # -- breakers, samples, hedge calibration ---------------------------------

    def _breaker_gate(self, dest):
        breaker = self._breakers.get(dest)
        if breaker is not None and not breaker.allow():
            raise BreakerOpenError(
                "circuit breaker open for shard {!r}: failing fast".format(dest)
            )

    def _record_outcome(self, dest, ok, elapsed=None):
        breaker = self._breakers.get(dest)
        stats = self._per_shard[dest]
        if ok:
            if breaker is not None:
                breaker.record_success()
            if elapsed is not None:
                self._samples[dest].append(elapsed)
                if self.obs is not None:
                    self.obs.metrics.observe(
                        "request.service_seconds", elapsed, destination=dest
                    )
        else:
            stats["failures"] += 1
            if breaker is not None:
                breaker.record_failure()

    def _hedge_trigger(self, dest):
        """Seconds to wait before hedging a probe to *dest* (None = don't)."""
        if not self.hedge:
            return None
        if self.hedge_delay is not None:
            return self.hedge_delay
        samples = self._samples[dest]
        if len(samples) < self.hedge_min_samples:
            return None
        return _p95(samples)

    # -- reporting ------------------------------------------------------------

    def _emit(self, name, destination, **args):
        if self.obs is not None and self.obs.tracer is not None:
            self.obs.tracer.emit(name, destination=destination, **args)

    def shard_stats(self):
        """Per-shard request/breaker/hedge view (metrics_snapshot feed)."""
        per_shard = {}
        for dest in self.destinations:
            entry = dict(self._per_shard[dest])
            breaker = self._breakers.get(dest)
            if breaker is not None:
                entry["breaker"] = breaker.snapshot()
            samples = self._samples[dest]
            if samples:
                entry["service_p95"] = _p95(samples)
            per_shard[dest] = entry
        return {
            "num_shards": self.num_shards,
            "scatters": self.scatters,
            "degraded_gathers": self.degraded_gathers,
            "hedges": {
                "issued": self.hedges_issued,
                "won": self.hedges_won,
                "lost": self.hedges_lost,
                "cancelled": self.hedge_cancels,
                "losers_settled": self.hedge_losers_settled,
            },
            "per_shard": per_shard,
        }
