"""Sharded search tier: corpus partitions behind a scatter-gather broker.

The monolithic :class:`~repro.web.engine.SearchEngine` answers every
``WebCount``/``WebPages`` probe from one inverted index over the whole
corpus.  This module partitions that corpus into N deterministic shards
(hash-by-doc: ``doc_id % num_shards``) and puts a broker in front:

- :class:`IndexShard` — one partition's documents plus its own
  :class:`~repro.web.index.InvertedIndex`; answers *partial* counts and
  *partial* ranked candidate lists.
- :class:`ShardedSearchEngine` — a drop-in :class:`SearchEngine`
  replacement whose ``count``/``search`` scatter over the shards and
  gather-merge the partials (count summation, top-k merge).

Because term frequencies, phrase positions, and ranking scores are all
functions of a *single* document, partitioning the corpus never changes
any per-document score — so the gather-merge below is **bit-identical**
to the unsharded engine: counts sum exactly (shards partition the doc
space) and the top-k merge sorts by the same ``(-score, url)`` key the
monolith uses, extended with a ``(doc_id, shard_id)`` tie-break so even
a pathological corpus with duplicate score+URL pairs merges
deterministically.

Network behaviour (per-shard latency, faults, breakers, hedging) lives
in :class:`~repro.web.shardclient.ShardedSearchClient`; this module is
the instantaneous compute tier, exactly as ``SearchEngine`` is for the
monolith.
"""

import os

from repro.util.errors import ReproError
from repro.web.engine import SearchEngine, SearchHit
from repro.web.index import InvertedIndex


def default_shards():
    """Shard count from ``$REPRO_SHARDS`` (default 1 — unsharded)."""
    raw = os.environ.get("REPRO_SHARDS")
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ReproError(
            "REPRO_SHARDS must be a positive integer, got {!r}".format(raw)
        )
    if value < 1:
        raise ReproError(
            "REPRO_SHARDS must be a positive integer, got {!r}".format(raw)
        )
    return value


def shard_of(doc_id, num_shards):
    """The shard owning *doc_id* (deterministic hash-by-doc)."""
    return doc_id % num_shards


def shard_destination(engine_name, shard_id):
    """The per-shard destination name latency/fault/breaker keys use."""
    return "{}:shard{}".format(engine_name, shard_id)


class IndexShard:
    """One corpus partition with its own positional inverted index."""

    def __init__(self, shard_id, corpus, doc_ids):
        self.shard_id = shard_id
        self.corpus = corpus
        self.doc_ids = doc_ids
        self.index = InvertedIndex()
        for doc_id in doc_ids:
            self.index.add_document(doc_id, corpus.document(doc_id).tokens)

    def __len__(self):
        return len(self.doc_ids)

    def count(self, expression, near_window):
        """This shard's share of the total match count."""
        return self.index.count(expression, near_window)

    def search_partials(self, expression, limit, ranking, near_window):
        """The shard's top-*limit* candidates as mergeable partials.

        Returns ``[(neg_score, url, doc_id, shard_id, doc), ...]`` sorted
        best-first.  The global top-*limit* is always contained in the
        union of per-shard top-*limit* lists, so *limit* candidates per
        shard suffice for an exact merge.
        """
        if limit == 0:
            return []
        doc_ids = self.index.matching_documents(expression, near_window)
        occurrence_maps = [
            self.index.phrase_occurrences(p) for p in expression.phrases
        ]
        scored = []
        for doc_id in doc_ids:
            doc = self.corpus.document(doc_id)
            tf = sum(len(occ.get(doc_id, ())) for occ in occurrence_maps)
            scored.append((-ranking(doc, tf), doc.url, doc_id, self.shard_id, doc))
        scored.sort(key=lambda item: item[:4])
        return scored[:limit]


def merge_count_partials(partials):
    """Gather a scattered count: shards partition the docs, so counts sum."""
    return sum(partials)


def merge_search_partials(partials, limit):
    """Gather scattered ranked partials into the global top-*limit*.

    *partials* is an iterable of per-shard candidate lists (see
    :meth:`IndexShard.search_partials`).  The merge key is the
    monolith's ``(-score, url)`` sort extended by ``(doc_id, shard_id)``
    — equal-score/equal-URL candidates (impossible in a well-formed
    corpus, where URLs are unique, but possible in adversarial test
    corpora) still merge deterministically, so scatter-gather output is
    a pure function of the corpus and the query.
    """
    merged = []
    for shard_partials in partials:
        merged.extend(shard_partials)
    merged.sort(key=lambda item: item[:4])
    return [
        SearchHit(doc.url, rank, doc.date)
        for rank, (_, _, _, _, doc) in enumerate(merged[:limit], start=1)
    ]


class ShardedSearchEngine(SearchEngine):
    """Scatter-gather broker over N :class:`IndexShard` partitions.

    A drop-in :class:`SearchEngine`: same constructor surface plus
    ``num_shards``, same ``count``/``search``/``parse``/``stats``
    contract, same results bit-for-bit.  The per-shard compute entry
    points (:meth:`shard_count` / :meth:`shard_search_partials`) are what
    :class:`~repro.web.shardclient.ShardedSearchClient` scatters over —
    one network-priced probe per shard.
    """

    def __init__(
        self,
        name,
        corpus,
        ranking,
        num_shards,
        supports_near=True,
        near_window=None,
    ):
        kwargs = {"supports_near": supports_near}
        if near_window is not None:
            kwargs["near_window"] = near_window
        super().__init__(name, corpus, ranking, **kwargs)
        if num_shards < 1:
            raise ReproError("num_shards must be >= 1")
        self.num_shards = num_shards
        buckets = [[] for _ in range(num_shards)]
        for doc in corpus.documents:
            buckets[shard_of(doc.doc_id, num_shards)].append(doc.doc_id)
        self.shards = [
            IndexShard(shard_id, corpus, doc_ids)
            for shard_id, doc_ids in enumerate(buckets)
        ]
        #: Per-shard probe counters (compute-level; the client layer has
        #: its own network-level accounting).
        self.shard_probes = [0] * num_shards

    # -- per-shard compute (what the broker client scatters) ---------------------

    def shard_count(self, shard_id, expression):
        """One shard's partial count for a parsed *expression*."""
        self.shard_probes[shard_id] += 1
        return self.shards[shard_id].count(expression, self.near_window)

    def shard_search_partials(self, shard_id, expression, limit):
        """One shard's ranked partials for a parsed *expression*."""
        self.shard_probes[shard_id] += 1
        return self.shards[shard_id].search_partials(
            expression, limit, self.ranking, self.near_window
        )

    # -- whole-engine API (gathers locally; used by the sync fallback) -----------

    def count(self, expr_text):
        self.count_queries += 1
        expression = self.parse(expr_text)
        return merge_count_partials(
            self.shard_count(shard_id, expression)
            for shard_id in range(self.num_shards)
        )

    def search(self, expr_text, limit):
        if limit < 0:
            from repro.util.errors import VirtualTableError

            raise VirtualTableError("search limit must be non-negative")
        self.search_queries += 1
        expression = self.parse(expr_text)
        return merge_search_partials(
            (
                self.shard_search_partials(shard_id, expression, limit)
                for shard_id in range(self.num_shards)
            ),
            limit,
        )

    def stats(self):
        payload = super().stats()
        payload["num_shards"] = self.num_shards
        payload["shard_probes"] = list(self.shard_probes)
        return payload

    def __repr__(self):
        return "ShardedSearchEngine({}, {} shards)".format(
            self.name, self.num_shards
        )


def sharded_view(engine, num_shards):
    """A (cached) :class:`ShardedSearchEngine` view over *engine*'s corpus.

    Shard indexes are pure functions of ``(corpus, num_shards)``, and the
    default :class:`~repro.web.world.SimulatedWeb` is process-shared, so
    views are memoized on the engine object — many test engines built
    with ``shards=4`` pay the per-shard index build once.
    """
    if num_shards < 1:
        raise ReproError("num_shards must be >= 1")
    cache = getattr(engine, "_sharded_views", None)
    if cache is None:
        cache = {}
        engine._sharded_views = cache
    view = cache.get(num_shards)
    if view is None:
        view = ShardedSearchEngine(
            engine.name,
            engine.corpus,
            engine.ranking,
            num_shards,
            supports_near=engine.supports_near,
            near_window=engine.near_window,
        )
        cache[num_shards] = view
    return view
