"""The search-engine query language.

A search expression is what WSQ's virtual tables send to an engine after
template substitution (Section 3).  The dialect is AltaVista's "simple
search" of the era::

    expr      := clause ( 'OR' clause )*
    clause    := unit ( ('near')? unit )*     # adjacency = AND
    unit      := '-' operand | operand        # '-' excludes
    operand   := '"' words '"' | word

A *quoted* operand is a phrase that must appear verbatim (consecutive
tokens); WSQ always quotes substituted parameters, so multi-word values
like ``New Mexico`` or ``four corners`` stay atomic.  Adjacent operands
without an explicit ``near`` are AND-ed; ``near`` chains associate
pairwise: ``a near b near c`` requires ``a`` within the window of ``b``
and ``b`` within the window of ``c``.  ``-operand`` excludes pages
containing the operand; ``OR`` unions clauses.
"""

import re

from repro.util.errors import VirtualTableError
from repro.web.tokenizer import phrase_tokens

AND = "and"
NEAR = "near"
OR = "or"

_QUOTED_RE = re.compile(r'-?"[^"]*"|\S+')


class SearchClause:
    """One OR-free conjunct: phrases, the operators between them, exclusions."""

    __slots__ = ("phrases", "operators", "exclusions")

    def __init__(self, phrases, operators, exclusions=()):
        self.phrases = list(phrases)  # token tuples that must appear
        self.operators = list(operators)  # len(phrases)-1 of AND/NEAR
        self.exclusions = list(exclusions)  # token tuples that must NOT appear

    def has_near(self):
        return NEAR in self.operators

    def canonical(self):
        parts = []
        for i, phrase in enumerate(self.phrases):
            if i > 0:
                parts.append(self.operators[i - 1])
            parts.append('"{}"'.format(" ".join(phrase)))
        for excluded in self.exclusions:
            parts.append('-"{}"'.format(" ".join(excluded)))
        return " ".join(parts)

    def __eq__(self, other):
        return (
            isinstance(other, SearchClause)
            and self.phrases == other.phrases
            and self.operators == other.operators
            and self.exclusions == other.exclusions
        )

    def __hash__(self):
        return hash(
            (tuple(self.phrases), tuple(self.operators), tuple(self.exclusions))
        )


class SearchExpression:
    """A parsed search expression: the OR of one or more clauses."""

    __slots__ = ("clauses", "text")

    def __init__(self, clauses, text):
        self.clauses = list(clauses)
        self.text = text

    # -- single-clause compatibility views (the common WSQ case) ----------------

    @property
    def phrases(self):
        """Every positive phrase across clauses (used for tf ranking)."""
        seen = []
        for clause in self.clauses:
            for phrase in clause.phrases:
                if phrase not in seen:
                    seen.append(phrase)
        return seen

    @property
    def operators(self):
        if len(self.clauses) == 1:
            return self.clauses[0].operators
        raise VirtualTableError(
            "expression with OR has no single operator chain"
        )

    def has_near(self):
        return any(clause.has_near() for clause in self.clauses)

    def has_or(self):
        return len(self.clauses) > 1

    def has_exclusions(self):
        return any(clause.exclusions for clause in self.clauses)

    def canonical(self):
        """A normalized rendering usable as a cache key."""
        return " OR ".join(clause.canonical() for clause in self.clauses)

    def __repr__(self):
        return "SearchExpression({!r})".format(self.text)

    def __eq__(self, other):
        return (
            isinstance(other, SearchExpression) and self.clauses == other.clauses
        )

    def __hash__(self):
        return hash(tuple(self.clauses))


def parse_search_expression(text):
    """Parse *text* into a :class:`SearchExpression`.

    Raises :class:`~repro.util.errors.VirtualTableError` for an empty or
    malformed expression (leading/trailing ``near``/``OR``, exclusion-only
    clauses, empty quoted phrases).
    """
    clauses = []
    phrases = []
    operators = []
    exclusions = []
    expect_operand = True

    def finish_clause():
        nonlocal phrases, operators, exclusions
        if not phrases:
            raise VirtualTableError(
                "search clause in {!r} has no positive phrases".format(text)
            )
        clauses.append(SearchClause(phrases, operators, exclusions))
        phrases, operators, exclusions = [], [], []

    for match in _QUOTED_RE.finditer(text):
        token_text = match.group(0)
        lowered = token_text.lower()
        if lowered == NEAR:
            if expect_operand:
                raise VirtualTableError(
                    "misplaced 'near' in search expression {!r}".format(text)
                )
            operators.append(NEAR)
            expect_operand = True
            continue
        if lowered == OR:
            if expect_operand:
                raise VirtualTableError(
                    "misplaced 'OR' in search expression {!r}".format(text)
                )
            finish_clause()
            expect_operand = True
            continue
        negated = token_text.startswith("-") and len(token_text) > 1
        raw = token_text[1:] if negated else token_text
        quoted = raw.startswith('"')
        if quoted:
            raw = raw[1:-1]
        tokens = tuple(phrase_tokens(raw))
        if not tokens:
            if quoted:
                raise VirtualTableError(
                    "empty phrase in search expression {!r}".format(text)
                )
            continue
        if negated:
            # Exclusions attach to the clause; they are not chain operands.
            exclusions.append(tokens)
            continue
        if not expect_operand:
            operators.append(AND)  # implicit conjunction
        if quoted:
            phrases.append(tokens)
        else:
            for j, token in enumerate(tokens):
                if j > 0:
                    operators.append(AND)
                phrases.append((token,))
        expect_operand = False
    if expect_operand and not phrases and not exclusions:
        raise VirtualTableError(
            "search expression {!r} has no phrases".format(text)
        )
    if expect_operand and (operators or (not phrases and exclusions)):
        raise VirtualTableError(
            "search expression {!r} ends in an operator or is exclusion-"
            "only".format(text)
        )
    finish_clause()
    return SearchExpression(clauses, text)


def instantiate_template(template, terms):
    """Substitute ``%1..%n`` in *template* with quoted *terms*.

    This is the paper's printf-style ``SearchExp`` mechanism: with
    ``template='%1 near %2'`` and ``terms=('Colorado', 'four corners')``
    the result is ``'"Colorado" near "four corners"'``.  Every parameter is
    quoted so multi-word values stay atomic phrases.
    """
    result = template
    # Substitute the highest numbers first so %12 is not clobbered by %1.
    for i in range(len(terms), 0, -1):
        marker = "%{}".format(i)
        if marker not in result:
            raise VirtualTableError(
                "search template {!r} has no parameter {}".format(template, marker)
            )
        result = result.replace(marker, '"{}"'.format(terms[i - 1]))
    leftover = re.search(r"%\d+", result)
    if leftover:
        raise VirtualTableError(
            "search template {!r} parameter {} was not bound".format(
                template, leftover.group(0)
            )
        )
    return result


def default_template(n, near_supported=True):
    """The paper's default ``SearchExp`` for *n* bound terms.

    ``"%1 near %2 near ... near %n"`` for engines with a ``near`` operator,
    ``"%1 %2 ... %n"`` otherwise (the Google case, paper footnote 1).
    """
    if n < 1:
        raise VirtualTableError("a search needs at least one bound term")
    joiner = " near " if near_supported else " "
    return joiner.join("%{}".format(i) for i in range(1, n + 1))
