"""Tokenization shared by the indexer and the query parser.

Tokens are lowercase runs of letters/digits; everything else separates.
No stemming and no stopword removal — "alien" and "aliens" are different
terms, which the calibration relies on.
"""

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text):
    """Split *text* into lowercase tokens."""
    return _TOKEN_RE.findall(text.lower())


def phrase_tokens(phrase):
    """Tokenize a phrase operand; empty phrases are rejected upstream."""
    return tokenize(phrase)
