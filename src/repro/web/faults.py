"""Deterministic fault injection for the simulated Web.

The paper treats search engines as reliable black boxes; real remote
search services are not.  :class:`FaultModel` decides — as a *stable
function of the request* — whether a request fails, how, and on which
attempt:

- **transient errors** (5xx, connection reset): keyed on
  ``(engine, expr, attempt)``, so a retry of the same request may
  succeed.  This is the common case real systems engineer for.
- **hard errors** (4xx-style): keyed on ``(engine, expr)`` only —
  attempt-independent, so retrying is provably useless and the retry
  policy must classify them as fatal.
- **hung requests**: the request neither answers nor errors for
  ``hang_seconds``; only a per-call timeout rescues the caller.
- **per-engine outage windows**: while an engine is in ``outages`` every
  request to it fails fast with :class:`EngineOutageError` — the
  scenario circuit breakers exist for.  ``begin_outage``/``end_outage``
  move an engine in and out of the window.

Determinism mirrors :class:`~repro.web.latency.UniformLatency`: the same
``(seed, engine, expr, attempt)`` always yields the same decision, so the
synchronous baseline and the asynchronous request pump see *identical*
fault schedules — preserving the Table 1 fair-comparison property even
under chaos.
"""

import threading

from repro.util.errors import (
    EngineOutageError,
    HardWebError,
    TransientWebError,
)
from repro.util.rng import stable_uniform

#: Fault kinds.
TRANSIENT = "transient"
HARD = "hard"
HANG = "hang"
OUTAGE = "outage"


class Fault:
    """One injected fault decision for a single request attempt."""

    __slots__ = ("kind", "error", "hang_seconds")

    def __init__(self, kind, error=None, hang_seconds=0.0):
        self.kind = kind
        self.error = error
        self.hang_seconds = hang_seconds

    def __repr__(self):
        if self.kind == HANG:
            return "Fault(hang {}s)".format(self.hang_seconds)
        return "Fault({}: {})".format(self.kind, self.error)


class FaultModel:
    """Seeded, per-request-stable fault schedule for the simulated Web.

    Rates are probabilities in ``[0, 1]``.  Checks are ordered outage →
    hard → transient → hang; at most one fault fires per attempt.  All
    decisions are pure functions of ``(seed, engine, expr, attempt)``
    plus the current outage set, so replaying a workload (sync or async,
    any interleaving) replays its faults.
    """

    def __init__(
        self,
        seed=0,
        transient_rate=0.0,
        hard_rate=0.0,
        hang_rate=0.0,
        hang_seconds=30.0,
        outages=(),
    ):
        for name, rate in (
            ("transient_rate", transient_rate),
            ("hard_rate", hard_rate),
            ("hang_rate", hang_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(name))
        if hang_seconds < 0:
            raise ValueError("hang_seconds cannot be negative")
        self.seed = seed
        self.transient_rate = transient_rate
        self.hard_rate = hard_rate
        self.hang_rate = hang_rate
        self.hang_seconds = hang_seconds
        self._outages = set(outages)
        self._lock = threading.Lock()
        # Injection counters (sync + async paths both feed these).
        self.transient_injected = 0
        self.hard_injected = 0
        self.hangs_injected = 0
        self.outage_rejections = 0

    # -- outage windows ----------------------------------------------------------

    def begin_outage(self, engine_name):
        """Open an outage window: *engine_name* refuses every request."""
        with self._lock:
            self._outages.add(engine_name)

    def end_outage(self, engine_name):
        """Close the outage window: the engine answers again."""
        with self._lock:
            self._outages.discard(engine_name)

    def is_down(self, engine_name):
        with self._lock:
            return engine_name in self._outages

    # -- the schedule ------------------------------------------------------------

    def fault_for(self, engine_name, expr_text, attempt=0):
        """The fault (or None) for attempt *attempt* of this request.

        Calling this consumes nothing: it is a pure lookup plus counter
        bookkeeping, safe to call from any thread.
        """
        fault = self.peek(engine_name, expr_text, attempt)
        if fault is not None:
            with self._lock:
                if fault.kind == OUTAGE:
                    self.outage_rejections += 1
                elif fault.kind == HARD:
                    self.hard_injected += 1
                elif fault.kind == TRANSIENT:
                    self.transient_injected += 1
                else:
                    self.hangs_injected += 1
        return fault

    def peek(self, engine_name, expr_text, attempt=0):
        """Like :meth:`fault_for` but without touching the counters.

        Tests use this to *predict* the outcome of a faulted workload
        (e.g. the exact surviving row count under ``on_error="drop"``).
        """
        if self.is_down(engine_name):
            return Fault(
                OUTAGE,
                EngineOutageError(
                    "engine {!r} is down (connection refused)".format(engine_name)
                ),
            )
        if self.hard_rate > 0.0:
            u = stable_uniform("fault-hard", self.seed, engine_name, expr_text)
            if u < self.hard_rate:
                return Fault(
                    HARD,
                    HardWebError(
                        "simulated hard failure from {!r} for {!r}".format(
                            engine_name, expr_text
                        )
                    ),
                )
        if self.transient_rate > 0.0:
            u = stable_uniform(
                "fault-transient", self.seed, engine_name, expr_text, attempt
            )
            if u < self.transient_rate:
                return Fault(
                    TRANSIENT,
                    TransientWebError(
                        "simulated transient failure from {!r} for {!r} "
                        "(attempt {})".format(engine_name, expr_text, attempt + 1)
                    ),
                )
        if self.hang_rate > 0.0:
            u = stable_uniform(
                "fault-hang", self.seed, engine_name, expr_text, attempt
            )
            if u < self.hang_rate:
                return Fault(HANG, hang_seconds=self.hang_seconds)
        return None

    def final_outcome(self, engine_name, expr_text, max_attempts):
        """Would this request eventually succeed within *max_attempts*?

        Returns ``"ok"`` when some attempt is fault-free (or hangs are
        the only obstacle and a retry clears them), or the kind of the
        blocking fault otherwise.  Retry classification note: hard
        faults block immediately (fatal), transient faults and hangs
        block only if every attempt draws one.
        """
        last = None
        for attempt in range(max_attempts):
            fault = self.peek(engine_name, expr_text, attempt)
            if fault is None:
                return "ok"
            if fault.kind in (HARD, OUTAGE):
                return fault.kind
            last = fault.kind
        return last

    # -- reporting ---------------------------------------------------------------

    def snapshot(self):
        with self._lock:
            return {
                "transient_injected": self.transient_injected,
                "hard_injected": self.hard_injected,
                "hangs_injected": self.hangs_injected,
                "outage_rejections": self.outage_rejections,
                "outages": sorted(self._outages),
            }
