"""Ranking functions for the simulated engines.

The two engines index the same corpus but rank differently, which is what
makes the paper's Query 6 interesting (AltaVista and Google agreed on only
4 of the states' top-5 URLs):

- :func:`av_ranking` — term-frequency and recency driven, 1990s AltaVista
  style.
- :func:`google_ranking` — dominated by the page's authority score, a
  stand-in for link-based PageRank.

Both add a small URL-keyed deterministic jitter so ties break stably but
differently per engine.
"""

import datetime

from repro.util.rng import stable_uniform

_EPOCH = datetime.date(1996, 1, 1)
_SPAN_DAYS = 1460.0


def _recency(date_str):
    date = datetime.date.fromisoformat(date_str)
    return max(0.0, (date - _EPOCH).days / _SPAN_DAYS)


def av_ranking(doc, tf):
    """AltaVista-style score: term frequency, freshness, small jitter.

    *tf* is the total number of query-phrase occurrences in the page,
    precomputed once per query by the engine.
    """
    jitter = stable_uniform("av-jitter", doc.url)
    return 1.0 * tf + 1.2 * _recency(doc.date) + 1.5 * jitter


def google_ranking(doc, tf):
    """Google-style score: authority-dominant with a term-frequency tiebreak."""
    jitter = stable_uniform("g-jitter", doc.url)
    return 10.0 * doc.authority + 0.05 * tf + 1.2 * jitter
