"""Per-request latency models.

The paper's whole motivation is that a search-engine round trip costs
"one or more seconds" while the query processor idles.  We model that
delay explicitly and deterministically: a latency model maps
``(engine_name, expression_text)`` to seconds.  The synchronous client
sleeps for it; the asynchronous request pump ``asyncio.sleep``s for it, so
N concurrent requests cost ~max of their delays rather than the sum —
exactly the effect asynchronous iteration exploits.

Benchmarks scale the delay down (tens of milliseconds instead of seconds);
the *ratio* between sequential and concurrent execution, which is what
Table 1 reports, is unaffected.
"""

from repro.util.rng import stable_uniform


class LatencyModel:
    """Base class: map a request to a delay in seconds."""

    def delay(self, engine_name, expr_text):
        raise NotImplementedError


class ZeroLatency(LatencyModel):
    """No delay — for unit tests."""

    def delay(self, engine_name, expr_text):
        return 0.0


class FixedLatency(LatencyModel):
    """The same delay for every request."""

    def __init__(self, seconds):
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.seconds = seconds

    def delay(self, engine_name, expr_text):
        return self.seconds


class UniformLatency(LatencyModel):
    """Deterministic per-request delay, uniform in [low, high).

    The delay is a stable function of the request (and *salt*), so sync
    and async runs of the same workload see identical per-request costs —
    the fair-comparison property Table 1 needs.
    """

    def __init__(self, low, high, salt=0):
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self.salt = salt

    def delay(self, engine_name, expr_text):
        u = stable_uniform("latency", self.salt, engine_name, expr_text)
        return self.low + u * (self.high - self.low)
