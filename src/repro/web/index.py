"""Positional inverted index with phrase and proximity evaluation.

The index maps each term to ``{doc_id: sorted positions}``.  Phrase
occurrences are found by position intersection; the ``near`` operator is
evaluated over phrase start positions with a configurable word window
(default 10, the AltaVista convention of the era).
"""

from repro.web.searchexpr import NEAR

DEFAULT_NEAR_WINDOW = 10


class InvertedIndex:
    """Positional inverted index over tokenized documents."""

    def __init__(self):
        self._postings = {}  # term -> {doc_id: [positions]}
        self._phrase_cache = {}  # multi-word phrase -> occurrence map
        self.doc_count = 0

    def add_document(self, doc_id, tokens):
        self.doc_count += 1
        self._phrase_cache.clear()  # index mutated: memoized phrases stale
        for position, term in enumerate(tokens):
            by_doc = self._postings.setdefault(term, {})
            positions = by_doc.get(doc_id)
            if positions is None:
                by_doc[doc_id] = [position]
            else:
                positions.append(position)

    # -- term/phrase level ----------------------------------------------------

    def term_postings(self, term):
        return self._postings.get(term, {})

    def term_frequency(self, doc_id, term):
        return len(self._postings.get(term, {}).get(doc_id, ()))

    def phrase_occurrences(self, phrase):
        """Map doc_id -> sorted start positions of *phrase* (a token tuple).

        Multi-word intersections are memoized (cleared on writes), since
        engines re-evaluate the same entity phrases constantly.
        """
        if not phrase:
            return {}
        first = self._postings.get(phrase[0])
        if first is None:
            return {}
        if len(phrase) == 1:
            return first
        phrase = tuple(phrase)
        cached = self._phrase_cache.get(phrase)
        if cached is not None:
            return cached
        # Candidate docs must contain every word of the phrase.
        candidates = set(first)
        for term in phrase[1:]:
            postings = self._postings.get(term)
            if postings is None:
                self._phrase_cache[phrase] = {}
                return {}
            candidates &= set(postings)
            if not candidates:
                self._phrase_cache[phrase] = {}
                return {}
        result = {}
        for doc_id in candidates:
            starts = []
            rest = [set(self._postings[t][doc_id]) for t in phrase[1:]]
            for start in first[doc_id]:
                if all(start + 1 + i in positions for i, positions in enumerate(rest)):
                    starts.append(start)
            if starts:
                result[doc_id] = starts
        self._phrase_cache[phrase] = result
        return result

    # -- expression level -------------------------------------------------------

    def matching_documents(self, expression, near_window=DEFAULT_NEAR_WINDOW):
        """Return the set of doc ids matching a parsed search expression.

        An expression is the OR of its clauses; each clause is an AND/NEAR
        chain of phrases minus its exclusions.
        """
        docs = set()
        for clause in expression.clauses:
            docs |= self._matching_clause(clause, near_window)
        return docs

    def _matching_clause(self, clause, near_window):
        occurrence_maps = [self.phrase_occurrences(p) for p in clause.phrases]
        if not occurrence_maps:
            return set()
        docs = set(occurrence_maps[0])
        for occurrences in occurrence_maps[1:]:
            docs &= set(occurrences)
            if not docs:
                return set()
        # Apply proximity constraints for each adjacent NEAR pair.
        for i, op in enumerate(clause.operators):
            if op != NEAR:
                continue
            left, right = occurrence_maps[i], occurrence_maps[i + 1]
            left_len = len(clause.phrases[i])
            right_len = len(clause.phrases[i + 1])
            docs = {
                doc_id
                for doc_id in docs
                if _within_window(
                    left[doc_id], left_len, right[doc_id], right_len, near_window
                )
            }
            if not docs:
                return set()
        for excluded in clause.exclusions:
            docs -= set(self.phrase_occurrences(excluded))
            if not docs:
                return set()
        return docs

    def count(self, expression, near_window=DEFAULT_NEAR_WINDOW):
        return len(self.matching_documents(expression, near_window))


def _within_window(left_starts, left_len, right_starts, right_len, window):
    """Is any pair of occurrences within *window* words of each other?

    The gap is measured between the nearest edges of the two phrase spans,
    so adjacent phrases have gap 0.
    """
    for a in left_starts:
        a_end = a + left_len - 1
        for b in right_starts:
            b_end = b + right_len - 1
            if b > a_end:
                gap = b - a_end - 1
            elif a > b_end:
                gap = a - b_end - 1
            else:
                gap = 0  # overlapping spans
            if gap <= window:
                return True
    return False
