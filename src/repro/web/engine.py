"""The search-engine abstraction WSQ's virtual tables sit on.

A :class:`SearchEngine` answers exactly the two questions the paper's
virtual tables ask:

- ``count(expr)`` — how many pages match (``WebCount``); "many Web search
  engines can return a total number of pages immediately, without
  delivering the actual URLs".
- ``search(expr, limit)`` — the top-*limit* ranked hits (``WebPages``),
  each a ``(URL, Rank, Date)`` triple.

The engine itself is instantaneous; latency is applied by the client layer
(:mod:`repro.web.client`), mirroring how network time, not index time,
dominated real engines.
"""

from repro.util.errors import VirtualTableError
from repro.web.index import DEFAULT_NEAR_WINDOW
from repro.web.searchexpr import parse_search_expression


class SearchHit:
    """One ranked search result."""

    __slots__ = ("url", "rank", "date")

    def __init__(self, url, rank, date):
        self.url = url
        self.rank = rank
        self.date = date

    def __repr__(self):
        return "SearchHit(#{} {})".format(self.rank, self.url)

    def __eq__(self, other):
        return (
            isinstance(other, SearchHit)
            and self.url == other.url
            and self.rank == other.rank
            and self.date == other.date
        )

    def __hash__(self):
        return hash((self.url, self.rank, self.date))


class SearchEngine:
    """A keyword search engine over one corpus with one ranking function."""

    def __init__(
        self,
        name,
        corpus,
        ranking,
        supports_near=True,
        near_window=DEFAULT_NEAR_WINDOW,
    ):
        self.name = name
        self.corpus = corpus
        self.ranking = ranking
        self.supports_near = supports_near
        self.near_window = near_window
        self.count_queries = 0
        self.search_queries = 0

    def parse(self, expr_text):
        expression = parse_search_expression(expr_text)
        if expression.has_near() and not self.supports_near:
            raise VirtualTableError(
                "engine {!r} does not support the 'near' operator".format(self.name)
            )
        return expression

    def count(self, expr_text):
        """Total number of matching pages for *expr_text*."""
        self.count_queries += 1
        expression = self.parse(expr_text)
        return self.corpus.index.count(expression, self.near_window)

    def search(self, expr_text, limit):
        """Top-*limit* hits for *expr_text*, rank 1 first."""
        if limit < 0:
            raise VirtualTableError("search limit must be non-negative")
        self.search_queries += 1
        expression = self.parse(expr_text)
        index = self.corpus.index
        doc_ids = index.matching_documents(expression, self.near_window)
        # Phrase occurrences are computed once per query (not per candidate
        # document) so scoring stays linear in the number of matches.
        occurrence_maps = [index.phrase_occurrences(p) for p in expression.phrases]
        scored = []
        for doc_id in doc_ids:
            doc = self.corpus.document(doc_id)
            tf = sum(len(occ.get(doc_id, ())) for occ in occurrence_maps)
            # Negated score + URL gives ascending sort a deterministic
            # best-first order with a stable tiebreak.
            scored.append((-self.ranking(doc, tf), doc.url, doc))
        scored.sort(key=lambda item: (item[0], item[1]))
        return [
            SearchHit(doc.url, rank, doc.date)
            for rank, (_, _, doc) in enumerate(scored[:limit], start=1)
        ]

    def stats(self):
        return {"count_queries": self.count_queries, "search_queries": self.search_queries}

    def __repr__(self):
        return "SearchEngine({})".format(self.name)
