"""Synthetic Web corpus: deterministic page generation.

Pages are rendered from the calibrated recipes of
:mod:`repro.web.calibration`: background filler words around the required
entity/keyword mentions, with NEAR chains kept inside the proximity window
and everything driven by seeded, order-independent randomness.  Each page
gets a URL, a date, an authority score (the "link popularity" signal the
Google-style ranker uses), and outgoing links (for the crawler scenario).
"""

import datetime

from repro.util.errors import ReproError
from repro.util.rng import derive_rng
from repro.web.calibration import STATE_CODES, build_recipes, stable_shuffle
from repro.web.index import InvertedIndex
from repro.web.tokenizer import phrase_tokens

# Filler vocabulary.  Deliberately disjoint from every entity/keyword token
# so background text never perturbs calibrated hit counts;
# :func:`_check_vocabulary` enforces this at build time.
BACKGROUND_VOCABULARY = (
    "a an of to in on for at from this that these those is are was were be "
    "been has have had will can may also more most other some such only its "
    "it as or if but not all each about into over under between during "
    "after before page web site home contact links news archive report "
    "study guide online free index data info email welcome update notes "
    "travel hotel visit events photos maps forum club school library center "
    "office county river valley park trail forest garden bridge museum "
    "gallery theater market street road avenue plaza tower harbor airport "
    "station hospital college university institute department program "
    "project research science course student teacher family community "
    "business company service product store shop price sale order account "
    "member login version release internet network server driver sports "
    "art books video audio radio media press journal letter article review "
    "summary detail section chapter figure table list item value number "
    "result question answer topic subject title author editor publisher "
    "copyright reserved rights terms policy privacy help faq support"
).split()


class Document:
    """One synthetic Web page."""

    __slots__ = ("doc_id", "url", "date", "tokens", "authority", "kind", "primary", "links")

    def __init__(self, doc_id, url, date, tokens, authority, kind, primary):
        self.doc_id = doc_id
        self.url = url
        self.date = date  # ISO 'YYYY-MM-DD'
        self.tokens = tokens
        self.authority = authority
        self.kind = kind
        self.primary = primary
        self.links = []  # URLs, filled in after all documents exist

    def text(self):
        return " ".join(self.tokens)

    def title(self):
        if self.primary:
            return "{} - {}".format(self.primary, self.url)
        return self.url

    def __repr__(self):
        return "Document({}, {})".format(self.doc_id, self.url)


class CorpusConfig:
    """Knobs for corpus generation.

    ``count_scale`` divides the Web-scale state/capital targets into page
    counts; ``near_scale`` divides the NEAR co-occurrence targets.  The
    default seed is fixed so every build of the default corpus is
    bit-identical.
    """

    def __init__(
        self,
        seed=2000,
        count_scale=6000.0,
        near_scale=16.0,
        background_docs=1200,
        max_links_per_page=5,
    ):
        self.seed = seed
        self.count_scale = count_scale
        self.near_scale = near_scale
        self.background_docs = background_docs
        self.max_links_per_page = max_links_per_page

    @classmethod
    def small(cls, seed=2000):
        """A tiny corpus for fast unit tests (orderings not calibrated)."""
        return cls(
            seed=seed, count_scale=120000.0, near_scale=160.0, background_docs=60
        )


class Corpus:
    """The generated pages plus their inverted index."""

    def __init__(self, documents, config):
        self.documents = documents
        self.config = config
        self.by_url = {doc.url: doc for doc in documents}
        if len(self.by_url) != len(documents):
            raise ReproError("duplicate URLs in generated corpus")
        self.index = InvertedIndex()
        for doc in documents:
            self.index.add_document(doc.doc_id, doc.tokens)

    def __len__(self):
        return len(self.documents)

    def document(self, doc_id):
        return self.documents[doc_id]

    def lookup_url(self, url):
        return self.by_url.get(url)

    def total_tokens(self):
        return sum(len(d.tokens) for d in self.documents)


def build_corpus(config=None):
    """Generate the corpus for *config* (default :class:`CorpusConfig`)."""
    config = config or CorpusConfig()
    recipes = build_recipes(config)
    _check_vocabulary(recipes)
    recipes = stable_shuffle(recipes, config.seed, "recipe-order")
    documents = []
    for doc_id, recipe in enumerate(recipes):
        rng = derive_rng(config.seed, "doc", doc_id)
        tokens = _render_tokens(recipe, rng)
        url = _make_url(recipe, rng, doc_id)
        date = _make_date(rng)
        authority = _make_authority(recipe, rng)
        documents.append(
            Document(doc_id, url, date, tokens, authority, recipe.kind, recipe.primary)
        )
    _assign_links(documents, config)
    return Corpus(documents, config)


# -- rendering -----------------------------------------------------------------


def _filler(rng, count):
    return rng.choices(BACKGROUND_VOCABULARY, k=count)


def _render_tokens(recipe, rng):
    tokens = _filler(rng, rng.randint(4, 9))
    for i, mention in enumerate(recipe.mentions):
        if i > 0:
            # NEAR chains stay inside the proximity window (10 words);
            # anything else is pushed well outside it.
            gap = rng.randint(1, 4) if recipe.near_chain else rng.randint(14, 20)
            tokens += _filler(rng, gap)
        tokens += phrase_tokens(mention)
    tokens += _filler(rng, rng.randint(4, 9))
    # Occasional repeat mentions of the primary entity give the term-
    # frequency ranker something to distinguish pages by.
    if recipe.primary is not None:
        for _ in range(rng.choice((0, 0, 1, 1, 2))):
            tokens += phrase_tokens(recipe.primary)
            tokens += _filler(rng, rng.randint(2, 6))
    return tokens


_URL_PATTERNS = (
    "www.{slug}{n}.com/index.html",
    "www.{slug}{n}.com/{word}.html",
    "{slug}{n}.org/{word}/",
    "www.geopages.com/{slug}{n}/",
    "members.webring.net/{slug}{n}.html",
    "www.{word}{n}.net/{slug}.html",
)


def _make_url(recipe, rng, doc_id):
    if recipe.official:
        if recipe.kind == "state":
            return "www.state.{}.us/welcome.html".format(STATE_CODES[recipe.primary])
        if recipe.kind == "sig":
            return "www.acm.org/{}/index.html".format(_slug(recipe.primary))
        if recipe.kind == "movie":
            return "www.moviedb.com/title/{}/".format(_slug(recipe.primary))
    slug = _slug(recipe.primary) if recipe.primary else rng.choice(BACKGROUND_VOCABULARY)
    pattern = rng.choice(_URL_PATTERNS)
    return pattern.format(slug=slug, n=doc_id, word=rng.choice(BACKGROUND_VOCABULARY))


def _slug(phrase):
    return "".join(phrase_tokens(phrase))


_EPOCH = datetime.date(1996, 1, 1)
_DATE_SPAN_DAYS = 1369  # through 1999-09-30


def _make_date(rng):
    return (_EPOCH + datetime.timedelta(days=rng.randint(0, _DATE_SPAN_DAYS))).isoformat()


def _make_authority(recipe, rng):
    if recipe.official:
        return 0.95 + 0.05 * rng.random()
    return rng.random() ** 3


def _assign_links(documents, config):
    if len(documents) < 2:
        return
    for doc in documents:
        rng = derive_rng(config.seed, "links", doc.doc_id)
        fanout = rng.randint(0, config.max_links_per_page)
        targets = set()
        for _ in range(fanout):
            target = rng.randrange(len(documents))
            if target != doc.doc_id:
                targets.add(target)
        doc.links = sorted(documents[t].url for t in targets)


def _check_vocabulary(recipes):
    """Assert background words never collide with mention tokens."""
    mention_tokens = set()
    for recipe in recipes:
        for mention in recipe.mentions:
            mention_tokens.update(phrase_tokens(mention))
    collisions = mention_tokens & set(BACKGROUND_VOCABULARY)
    if collisions:
        raise ReproError(
            "background vocabulary collides with mentions: {}".format(
                sorted(collisions)
            )
        )
