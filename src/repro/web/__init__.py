"""The simulated World-Wide Web.

WSQ treats a search engine as a black box that accepts a keyword search
expression and returns either a hit count or a ranked URL list.  This
package provides that black box, built from scratch:

- :mod:`repro.web.tokenizer` — text and phrase tokenization.
- :mod:`repro.web.searchexpr` — the engine query language (quoted phrases,
  implicit AND, the ``near`` proximity operator AltaVista supported).
- :mod:`repro.web.index` — positional inverted index with phrase and
  proximity matching.
- :mod:`repro.web.corpus` — deterministic synthetic page generation,
  calibrated (:mod:`repro.web.calibration`) so the paper's published result
  shapes reproduce.
- :mod:`repro.web.engine` — search engines with pluggable ranking
  (:mod:`repro.web.ranking`); two instances ("AV", "Google") rank
  differently so cross-engine agreement is rare, as in the paper's Query 6.
- :mod:`repro.web.latency` / :mod:`repro.web.client` — per-request delay
  models and the blocking/async clients the query processor uses.
- :mod:`repro.web.cache` — a search-result cache ([HN96]-style memoization).
- :mod:`repro.web.fetch` — page fetch + link extraction for the crawler
  scenario (paper Section 4.2).
- :mod:`repro.web.world` — bundles corpus, engines, and fetch service.
"""

from repro.web.cache import (
    CachedFailure,
    CacheLookup,
    CachePolicy,
    DiskCacheTier,
    ResultCache,
    TieredResultCache,
    make_cache,
)
from repro.web.client import SearchClient
from repro.web.corpus import Corpus, CorpusConfig, build_corpus
from repro.web.engine import SearchEngine, SearchHit
from repro.web.fetch import FetchService
from repro.web.latency import FixedLatency, UniformLatency, ZeroLatency
from repro.web.world import SimulatedWeb, default_web

__all__ = [
    "CachePolicy",
    "CacheLookup",
    "CachedFailure",
    "Corpus",
    "CorpusConfig",
    "DiskCacheTier",
    "FetchService",
    "FixedLatency",
    "ResultCache",
    "SearchClient",
    "SearchEngine",
    "SearchHit",
    "SimulatedWeb",
    "TieredResultCache",
    "UniformLatency",
    "ZeroLatency",
    "build_corpus",
    "make_cache",
    "default_web",
]
