"""Name binding: SQL AST expressions -> bound (index-based) expressions."""

from repro.relational.expr import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    LikePredicate,
    Literal,
    Negation,
    NullCheck,
)
from repro.sql import ast
from repro.util.errors import PlanError


class Binder:
    """Resolves column names against one schema.

    *subquery_planner*, when provided, plans uncorrelated subqueries
    (``IN (SELECT ...)`` / ``EXISTS (SELECT ...)``) into executable
    subplans; contexts that cannot host subqueries leave it unset.
    """

    def __init__(self, schema, subquery_planner=None):
        self.schema = schema
        self.subquery_planner = subquery_planner

    def bind(self, node):
        """Bind *node*; aggregate calls are rejected (handled separately)."""
        if isinstance(node, ast.Const):
            return Literal(node.value)
        if isinstance(node, ast.Name):
            index = self.schema.resolve(node.name, node.qualifier)
            return ColumnRef(index, node.sql())
        if isinstance(node, ast.Arith):
            return BinaryOp(node.op, self.bind(node.left), self.bind(node.right))
        if isinstance(node, ast.Cmp):
            return Comparison(node.op, self.bind(node.left), self.bind(node.right))
        if isinstance(node, ast.LogicalAnd):
            return Conjunction([self.bind(t) for t in node.terms])
        if isinstance(node, ast.LogicalOr):
            return Disjunction([self.bind(t) for t in node.terms])
        if isinstance(node, ast.LogicalNot):
            return Negation(self.bind(node.term))
        if isinstance(node, ast.Like):
            return LikePredicate(self.bind(node.expr), node.pattern, node.negated)
        if isinstance(node, ast.IsNull):
            return NullCheck(self.bind(node.expr), node.negated)
        if isinstance(node, ast.InList):
            # Desugared: x IN (a, b) == (x = a OR x = b); NOT IN negates.
            bound = self.bind(node.expr)
            terms = [Comparison("=", bound, Literal(v)) for v in node.values]
            disjunction = Disjunction(terms) if len(terms) > 1 else terms[0]
            return Negation(disjunction) if node.negated else disjunction
        if isinstance(node, ast.Between):
            bound = self.bind(node.expr)
            window = Conjunction(
                [
                    Comparison(">=", bound, self.bind(node.low)),
                    Comparison("<=", bound, self.bind(node.high)),
                ]
            )
            return Negation(window) if node.negated else window
        if isinstance(node, ast.InSelect):
            from repro.relational.expr import InSubqueryPredicate

            subplan = self._plan_subquery(node.subquery)
            if len(subplan.schema) != 1:
                raise PlanError("IN subquery must produce exactly one column")
            return InSubqueryPredicate(
                self.bind(node.expr), subplan, negated=node.negated
            )
        if isinstance(node, ast.Exists):
            from repro.relational.expr import ExistsPredicate

            return ExistsPredicate(self._plan_subquery(node.subquery))
        if isinstance(node, ast.FuncCall):
            raise PlanError(
                "aggregate {} is not allowed in this clause".format(node.sql())
            )
        raise PlanError("cannot bind expression {!r}".format(node))

    def _plan_subquery(self, subquery):
        if self.subquery_planner is None:
            raise PlanError("subqueries are not supported in this clause")
        return self.subquery_planner(subquery)

    def can_bind(self, node):
        """True when every name in *node* resolves against this schema."""
        try:
            self.bind(node)
        except PlanError:
            return False
        return True


def conjuncts_of(node):
    """Split a WHERE AST into top-level AND-ed conjuncts."""
    if node is None:
        return []
    if isinstance(node, ast.LogicalAnd):
        result = []
        for term in node.terms:
            result.extend(conjuncts_of(term))
        return result
    return [node]


def collect_names(node):
    """All :class:`~repro.sql.ast.Name` nodes inside an AST expression."""
    names = []

    def walk(n):
        if isinstance(n, ast.Name):
            names.append(n)
        elif isinstance(n, ast.Arith):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, ast.Cmp):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, (ast.LogicalAnd, ast.LogicalOr)):
            for t in n.terms:
                walk(t)
        elif isinstance(n, ast.LogicalNot):
            walk(n.term)
        elif isinstance(n, ast.FuncCall):
            if n.argument is not None:
                walk(n.argument)
        elif isinstance(n, (ast.Like, ast.IsNull, ast.InList)):
            walk(n.expr)
        elif isinstance(n, ast.Between):
            walk(n.expr)
            walk(n.low)
            walk(n.high)
        elif isinstance(n, ast.InSelect):
            # Names inside the subquery resolve against ITS OWN FROM list,
            # not the outer schema; only the probe expression is outer.
            walk(n.expr)
        elif isinstance(n, ast.Exists):
            pass
        elif isinstance(n, (ast.Const, ast.Star)):
            pass
        elif n is not None:
            raise PlanError("unexpected AST node {!r}".format(n))

    walk(node)
    return names


def collect_aggregates(node):
    """All aggregate :class:`~repro.sql.ast.FuncCall` nodes inside *node*."""
    calls = []

    def walk(n):
        if isinstance(n, ast.FuncCall):
            calls.append(n)
        elif isinstance(n, ast.Arith):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, ast.Cmp):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, (ast.LogicalAnd, ast.LogicalOr)):
            for t in n.terms:
                walk(t)
        elif isinstance(n, ast.LogicalNot):
            walk(n.term)
        elif isinstance(n, (ast.Like, ast.IsNull, ast.InList)):
            walk(n.expr)
        elif isinstance(n, ast.Between):
            walk(n.expr)
            walk(n.low)
            walk(n.high)
        elif isinstance(n, ast.InSelect):
            walk(n.expr)

    if node is not None:
        walk(node)
    return calls
