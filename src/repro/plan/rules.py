"""Rule-driven optimization over the logical algebra.

This is layer 2 of the planning stack (see :mod:`repro.plan.logical`):
a small fixed-point rule engine plus rule packs that re-express the
repository's plan transformations — most importantly the paper's full
ReqSync placement algorithm (Section 4.5: *Insertion → Percolation →
Consolidation*, with clash rules 1–3 and the enabling rewrites) — as
:class:`Rule` objects over :class:`~repro.plan.logical.LogicalNode`
trees.

Engine
------

A :class:`RuleEngine` holds an ordered list of *priority groups*; each
group is an ordered list of rules.  One optimization step scans the tree
(preorder for ``top_down`` rules, postorder for ``bottom_up`` rules) and
fires the first rule that matches *and* changes the tree; the engine
then restarts from the highest-priority group.  The run terminates at a
fixed point (no rule in any group fires) or when every rule's fire
budget is exhausted.  This restart discipline reproduces the seed
rewriter's control flow exactly: the ReqSync pack's groups are
``[[insert], [consolidate], [percolation rules]]``, matching the seed's
"consolidate-once eagerly, then advance the first ReqSync found in
preorder, then restart" loop.

Each firing is recorded as a :class:`RuleFiring` (with before/after node
counts — surfaced by ``explain(form="rules")``), emitted on the obs
tracer as a ``plan.rule_fired`` event, and counted on the metrics
registry as ``planner.rules_fired{rule=...}``.

Rule packs
----------

:func:`reqsync_pack`
    The paper's placement algorithm.  Runs by default on the
    asynchronous path; behavior-preserving with respect to the seed
    implementation (verified by golden snapshots and an A/B structural
    diff against the frozen legacy rewriter in
    ``tests/test_rule_equivalence.py``).
:data:`PUSHDOWN_PACK`, :data:`PRUNE_PACK`, :data:`REORDER_PACK`
    Classic relational rewrites (predicate pushdown, projection
    pruning/identity elimination, size-based cross-product reordering).
    These are *opt-in* via ``PlannerOptions(logical_rules=...)`` — the
    default pipeline keeps the seed's exact plan shapes.
:data:`DECORRELATE_PACK`, :data:`OR_TO_UNION_PACK`,
:data:`EARLY_FILTER_PACK`, :data:`AGG_SINGLE_PASS_PACK`
    GOLD-style cost-gated packs (querytorque's biggest wins: IN-subquery
    decorrelation, disjunction splitting, early filtering, single-pass
    aggregation).  Every structural rewrite in these packs is *gated* by
    the engine's :class:`~repro.plan.cost.CostModel` — the candidate
    only replaces the original when the model prices it strictly
    cheaper, so calibration profiles (measured latencies, ANALYZE
    statistics, cache hit ratios) can flip each decision.  Also opt-in:
    through ``PlannerOptions(logical_rules=...)``,
    ``WsqEngine(rules=...)``, CLI ``--rules``, or ``$REPRO_RULES``.
"""

import os

from repro.obs.trace import PLAN_RULE_FIRED
from repro.plan import logical as L
from repro.relational.expr import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    InSubqueryPredicate,
    LikePredicate,
    Literal,
    Negation,
    NullCheck,
    make_conjunction,
)
from repro.util.errors import PlanError

TOP_DOWN = "top_down"
BOTTOM_UP = "bottom_up"

#: Default per-rule fire budget; generous, but bounds runaway rewrites.
DEFAULT_FIRE_BUDGET = 1000


class _Root:
    """Sentinel parent above the real root, so every node has a parent."""

    def __init__(self, child):
        self.child = child
        self.children = (child,)
        self.schema = child.schema

    def replace_child(self, old, new):
        assert old is self.child
        self.child = new
        self.children = (new,)
        self.schema = new.schema


class RuleContext:
    """Per-scan state handed to rules: parent links and the knobs.

    ``cost_model`` (a :class:`~repro.plan.cost.CostModel`, or None) is
    what the cost-gated packs consult; without one their gates default
    to permissive (structural guards still apply).
    """

    def __init__(self, root, parents, settings=None, cost_model=None):
        self.root = root
        self._parents = parents
        self.settings = settings
        self.cost_model = cost_model

    def parent_of(self, node):
        return self._parents.get(id(node))

    def grandparent_of(self, node):
        parent = self.parent_of(node)
        if parent is None or isinstance(parent, _Root):
            return None
        return self._parents.get(id(parent))

    def is_left_child(self, parent, node):
        return getattr(parent, "left", None) is node

    def left_arity(self, parent):
        return len(parent.left.schema)


class RuleFiring:
    """Record of one rule application (shown by ``explain(form="rules")``)."""

    __slots__ = ("rule", "before_nodes", "after_nodes")

    def __init__(self, rule, before_nodes, after_nodes):
        self.rule = rule
        self.before_nodes = before_nodes
        self.after_nodes = after_nodes

    def as_dict(self):
        return {
            "rule": self.rule,
            "before_nodes": self.before_nodes,
            "after_nodes": self.after_nodes,
        }

    def __repr__(self):
        return "<RuleFiring {} {}->{}>".format(
            self.rule, self.before_nodes, self.after_nodes
        )


class Rule:
    """One rewrite: ``matches(node, ctx)`` guards ``apply(node, ctx)``.

    ``apply`` mutates the tree through ``replace_child`` and returns
    True when it changed anything (a rule may match yet discover the
    rewrite is not possible — e.g. a clashing selection that cannot be
    hoisted — in which case it returns False and the scan continues).

    ``direction`` chooses the scan order used when driving this rule:
    ``top_down`` (preorder, the default — percolation wants the
    *highest* ReqSync first) or ``bottom_up`` (postorder — composition
    rules that shrink subtrees converge faster bottom-up).
    """

    name = "rule"
    direction = TOP_DOWN

    def matches(self, node, ctx):  # pragma: no cover - interface
        raise NotImplementedError

    def apply(self, node, ctx):  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self):
        return "<Rule {}>".format(self.name)


class RuleEngine:
    """Fixed-point driver over priority groups of rules.

    *groups* is an ordered list of rule lists.  ``run`` returns the
    optimized root; firings accumulate on :attr:`firings`.
    """

    def __init__(
        self,
        groups,
        settings=None,
        fire_budget=DEFAULT_FIRE_BUDGET,
        tracer=None,
        metrics=None,
        query_id=None,
        cost_model=None,
    ):
        self.groups = [list(group) for group in groups]
        self.settings = settings
        self.fire_budget = fire_budget
        self.tracer = tracer
        self.metrics = metrics
        self.query_id = query_id
        self.cost_model = cost_model
        self.firings = []
        self.exhausted = set()
        self._fires = {}

    # -- public API -----------------------------------------------------------

    def run(self, node):
        """Optimize *node* to a fixed point; returns the (new) root node."""
        root = _Root(node)
        changed = True
        while changed:
            changed = False
            for group in self.groups:
                if self._scan_group(root, group):
                    changed = True
                    break  # restart from the highest-priority group
        return root.child

    def rules(self):
        for group in self.groups:
            yield from group

    # -- driver ---------------------------------------------------------------

    def _scan_group(self, root, group):
        """Fire at most one rule from *group*; True when the tree changed."""
        active = [r for r in group if not self._budget_spent(r)]
        if not active:
            return False
        top_down = [r for r in active if r.direction == TOP_DOWN]
        bottom_up = [r for r in active if r.direction == BOTTOM_UP]
        if top_down and self._scan(root, top_down, postorder=False):
            return True
        if bottom_up and self._scan(root, bottom_up, postorder=True):
            return True
        return False

    def _scan(self, root, rules, postorder):
        parents = {id(c): p for p, c in L.walk_with_parents(root.child, root)}
        ctx = RuleContext(root, parents, self.settings, self.cost_model)
        order = list(L.walk(root.child))
        if postorder:
            order.reverse()
        for node in order:
            for rule in rules:
                if self._budget_spent(rule):
                    continue
                if not rule.matches(node, ctx):
                    continue
                before = L.node_count(root.child)
                if rule.apply(node, ctx):
                    self._record(rule, before, L.node_count(root.child))
                    return True
        return False

    def _budget_spent(self, rule):
        if self._fires.get(rule.name, 0) >= self.fire_budget:
            self.exhausted.add(rule.name)
            return True
        return False

    def _record(self, rule, before, after):
        self._fires[rule.name] = self._fires.get(rule.name, 0) + 1
        self.firings.append(RuleFiring(rule.name, before, after))
        if self.tracer is not None:
            self.tracer.emit(
                PLAN_RULE_FIRED,
                query_id=self.query_id,
                rule=rule.name,
                before_nodes=before,
                after_nodes=after,
            )
        if self.metrics is not None:
            self.metrics.inc("planner.rules_fired", rule=rule.name)


# ---------------------------------------------------------------------------
# The ReqSync pack — the paper's Insertion / Percolation / Consolidation.
# ---------------------------------------------------------------------------


def _filled_under(reqsync):
    """The filled-attribute set A_i of *reqsync* (in its child's schema)."""
    return L.placeholder_columns(reqsync.child)


def _filled_in_parent(reqsync, parent, ctx):
    """Translate A_i into *parent*'s output coordinates."""
    filled = _filled_under(reqsync)
    if isinstance(
        parent, (L.LogicalCrossProduct, L.LogicalJoin, L.LogicalDependentJoin)
    ) and not ctx.is_left_child(parent, reqsync):
        offset = ctx.left_arity(parent)
        return {i + offset for i in filled}
    return set(filled)


def _swap_up(grandparent, parent, reqsync):
    """``gp -> parent -> ... reqsync ...`` becomes
    ``gp -> reqsync -> parent -> ...`` (reqsync's old child)."""
    parent.replace_child(reqsync, reqsync.child)
    reqsync.child = parent
    reqsync.children = (parent,)
    reqsync.schema = parent.schema
    # Hand the (now schema-consistent) reqsync to the grandparent last, so
    # its _refresh_schema sees the post-swap schema.
    grandparent.replace_child(parent, reqsync)


class _ReqSyncRule(Rule):
    """Base for percolation rules: match a ReqSync under a movable parent."""

    parent_type = None

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalReqSync):
            return False
        parent = ctx.parent_of(node)
        if parent is None or isinstance(parent, (_Root, L.LogicalReqSync)):
            return False
        if not isinstance(parent, self.parent_type):
            return False
        return self.admits(node, parent, ctx)

    def admits(self, reqsync, parent, ctx):
        return True

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        _swap_up(ctx.parent_of(parent), parent, node)
        return True


class InsertReqSync(Rule):
    """Insertion: EVScan -> ReqSync over AEVScan (paper step 1).

    Matching a *synchronous* virtual-table scan, it flips the scan to
    asynchronous (the lowered AEVScan registers calls and emits
    placeholders) and caps it with a ReqSync that waits for them.
    """

    name = "reqsync.insert"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalVTableScan) and not node.asynchronous

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        scan = L.LogicalVTableScan(node.instance, asynchronous=True)
        scan.annotations.update(node.annotations)
        stream = bool(ctx.settings.stream) if ctx.settings is not None else False
        parent.replace_child(node, L.LogicalReqSync(scan, stream=stream))
        return True


class ConsolidateReqSyncs(Rule):
    """Consolidation: merge ReqSync directly over ReqSync (paper step 3).

    One ReqSync manages any number of pending calls per tuple (Section
    4.4), so stacked synchronizers collapse; order preservation is OR'd.
    """

    name = "reqsync.consolidate"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalReqSync) and isinstance(
            node.child, L.LogicalReqSync
        )

    def apply(self, node, ctx):
        inner = node.child
        node.preserve_order = node.preserve_order or inner.preserve_order
        node.replace_child(inner, inner.child)
        return True


class PercolateAboveFilter(_ReqSyncRule):
    """Percolation past a non-clashing selection."""

    name = "reqsync.percolate_filter"
    parent_type = L.LogicalFilter

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return not (parent.predicate.referenced_columns() & filled)


class HoistClashingSelection(_ReqSyncRule):
    """Enabling rewrite: hoist a clashing selection above *its* parent.

    Clash rule 1 blocks ReqSync under a selection that reads a filled
    attribute; but the selection itself may commute upward (through
    filters, sorts, distincts, and — with a predicate remap — past
    binary joins), clearing the way for the next percolation step.
    """

    name = "reqsync.hoist_selection"
    parent_type = L.LogicalFilter

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return bool(parent.predicate.referenced_columns() & filled)

    def apply(self, node, ctx):
        filter_op = ctx.parent_of(node)
        target = ctx.parent_of(filter_op)
        if target is None or isinstance(target, (_Root, L.LogicalReqSync)):
            return False
        great = ctx.parent_of(target)
        if great is None:
            return False
        if isinstance(
            target, (L.LogicalFilter, L.LogicalSort, L.LogicalDistinct)
        ):
            predicate = filter_op.predicate
        elif isinstance(
            target,
            (L.LogicalCrossProduct, L.LogicalJoin, L.LogicalDependentJoin),
        ):
            if ctx.is_left_child(target, filter_op):
                predicate = filter_op.predicate
            else:
                offset = ctx.left_arity(target)
                refs = filter_op.predicate.referenced_columns()
                predicate = filter_op.predicate.remap(
                    {i: i + offset for i in refs}
                )
        else:
            return False
        # Splice the selection out of its slot, then re-create it (with
        # the remapped predicate) above the operator it commuted past.
        target.replace_child(filter_op, filter_op.child)
        great.replace_child(target, L.LogicalFilter(target, predicate))
        return True


class PercolateAboveProject(_ReqSyncRule):
    """Percolation past a projection, guarded by clash rules 1 and 2."""

    name = "reqsync.percolate_project"
    parent_type = L.LogicalProject

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        kept = {
            e.index for e in parent.expressions if isinstance(e, ColumnRef)
        }
        if not filled <= kept:
            return False  # clash rule 2: projection drops a filled attr
        computed = set()
        for expr in parent.expressions:
            if not isinstance(expr, ColumnRef):
                computed |= expr.referenced_columns()
        # clash rule 1: a computed output depends on a filled attribute.
        return not (computed & filled)


class PercolateAboveDependentJoin(_ReqSyncRule):
    """Percolation past a dependent join (blocked when the inner side's
    bindings read a filled attribute of the outer)."""

    name = "reqsync.percolate_depjoin"
    parent_type = L.LogicalDependentJoin

    def admits(self, reqsync, parent, ctx):
        if ctx.is_left_child(parent, reqsync):
            filled = _filled_in_parent(reqsync, parent, ctx)
            if set(parent.binding_columns.values()) & filled:
                return False
        return True


class JoinToSelectionOverCrossProduct(_ReqSyncRule):
    """Enabling rewrite: clashing join -> selection over cross-product
    (the paper's Example 3).  The ReqSync can then rise through the
    cross-product while the selection stays above."""

    name = "reqsync.join_to_selection"
    parent_type = L.LogicalJoin

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return bool(parent.predicate.referenced_columns() & filled)

    def apply(self, node, ctx):
        join = ctx.parent_of(node)
        grandparent = ctx.parent_of(join)
        product = L.LogicalCrossProduct(join.left, join.right)
        grandparent.replace_child(join, L.LogicalFilter(product, join.predicate))
        return True


class PercolateAboveJoin(_ReqSyncRule):
    """Percolation past a non-clashing join."""

    name = "reqsync.percolate_join"
    parent_type = L.LogicalJoin

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return not (parent.predicate.referenced_columns() & filled)


class PercolateAboveCrossProduct(_ReqSyncRule):
    """Percolation past oblivious binary operators (never clash)."""

    name = "reqsync.percolate_product"
    parent_type = (L.LogicalCrossProduct, L.LogicalUnion)


class PullAboveSortOrdered(_ReqSyncRule):
    """Extension: pull ReqSync above a Sort whose keys do not read a
    filled attribute, switching to order-preserving emission so the
    sorted order survives (``pull_above_order_sensitive=True``)."""

    name = "reqsync.pull_above_sort"
    parent_type = L.LogicalSort

    def admits(self, reqsync, parent, ctx):
        settings = ctx.settings
        if settings is None or not getattr(
            settings, "pull_above_order_sensitive", False
        ):
            return False
        filled = _filled_in_parent(reqsync, parent, ctx)
        keys = set()
        for expr, _ in parent.keys:
            keys |= expr.referenced_columns()
        return not (keys & filled)

    def apply(self, node, ctx):
        node.preserve_order = True
        return super().apply(node, ctx)


def reqsync_pack(settings=None):
    """Priority groups implementing the paper's placement algorithm.

    Group order reproduces the seed rewriter: insertion first, then
    eager consolidation (when enabled), then the percolation rules —
    each firing restarts from the top, so adjacent ReqSyncs merge
    before either floats to the top of the plan as a no-op.
    Aggregate/Distinct (clash rule 3) and Limit (counting) have no
    rule: ReqSync simply never rises past them.
    """
    consolidate = settings is None or getattr(settings, "consolidate", True)
    groups = [[InsertReqSync()]]
    if consolidate:
        groups.append([ConsolidateReqSyncs()])
    groups.append(
        [
            PercolateAboveFilter(),
            HoistClashingSelection(),
            PercolateAboveProject(),
            PercolateAboveDependentJoin(),
            JoinToSelectionOverCrossProduct(),
            PercolateAboveJoin(),
            PercolateAboveCrossProduct(),
            PullAboveSortOrdered(),
        ]
    )
    return groups


# ---------------------------------------------------------------------------
# Opt-in relational packs (PlannerOptions(logical_rules=...)).
# ---------------------------------------------------------------------------


def _split_conjuncts(predicate):
    if isinstance(predicate, Conjunction):
        terms = []
        for term in predicate.terms:
            terms.extend(_split_conjuncts(term))
        return terms
    return [predicate]


class PushFilterIntoProduct(Rule):
    """Predicate pushdown: route conjuncts of a filter over a binary
    join/product to the side they reference; one-sided right conjuncts
    are remapped into the right child's coordinates."""

    name = "pushdown.filter_into_product"

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalFilter):
            return False
        if not isinstance(
            node.child, (L.LogicalCrossProduct, L.LogicalJoin)
        ):
            return False
        left_width = len(node.child.left.schema)
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            if refs and (
                max(refs) < left_width or min(refs) >= left_width
            ):
                return True
        return False

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        binary = node.child
        left_width = len(binary.left.schema)
        left_terms, right_terms, kept = [], [], []
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            if refs and max(refs) < left_width:
                left_terms.append(term)
            elif refs and min(refs) >= left_width:
                right_terms.append(
                    term.remap({i: i - left_width for i in refs})
                )
            else:
                kept.append(term)
        if left_terms:
            binary.replace_child(
                binary.left,
                L.LogicalFilter(binary.left, make_conjunction(left_terms)),
            )
        if right_terms:
            binary.replace_child(
                binary.right,
                L.LogicalFilter(binary.right, make_conjunction(right_terms)),
            )
        if kept:
            node.predicate = make_conjunction(kept)
            node._refresh_schema()
        else:
            parent.replace_child(node, binary)
        return True


class PushFilterThroughReorderable(Rule):
    """Predicate pushdown through order/duplicate-oblivious unaries
    (Sort, Distinct) — a selection commutes with both.  Limit is *not*
    reorderable: filtering before the cutoff changes the result."""

    name = "pushdown.filter_through_unary"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalFilter) and isinstance(
            node.child, (L.LogicalSort, L.LogicalDistinct)
        )

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        unary = node.child
        node.replace_child(unary, unary.child)
        unary.replace_child(unary.child, node)
        parent.replace_child(node, unary)
        return True


class ComposeProjections(Rule):
    """Projection pruning: collapse a pass-through projection over
    another projection by substituting the inner expressions."""

    name = "prune.compose_projections"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        return (
            isinstance(node, L.LogicalProject)
            and isinstance(node.child, L.LogicalProject)
            and all(isinstance(e, ColumnRef) for e in node.expressions)
        )

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        inner = node.child
        composed = [inner.expressions[e.index] for e in node.expressions]
        parent.replace_child(
            node, L.LogicalProject(inner.child, composed, node.schema)
        )
        return True


class RemoveIdentityProject(Rule):
    """Projection pruning: drop a projection that passes every input
    column through unchanged (same order, same names)."""

    name = "prune.identity_project"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalProject):
            return False
        child_schema = node.child.schema
        if len(node.expressions) != len(child_schema):
            return False
        for i, expr in enumerate(node.expressions):
            if not (isinstance(expr, ColumnRef) and expr.index == i):
                return False
        return list(node.schema.names()) == list(child_schema.names())

    def apply(self, node, ctx):
        ctx.parent_of(node).replace_child(node, node.child)
        return True


class ReorderProductBySize(Rule):
    """Cost-based reordering: put the smaller stored table on the outer
    (left) side of a cross product, with a compensating projection that
    restores the original column order."""

    name = "reorder.product_by_size"

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalCrossProduct):
            return False
        if node.annotations.get("reordered"):
            return False
        left, right = node.left, node.right
        if not (
            isinstance(left, L.LogicalScan) and isinstance(right, L.LogicalScan)
        ):
            return False
        return right.table.row_count() < left.table.row_count()

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        left_width = len(node.left.schema)
        right_width = len(node.right.schema)
        swapped = L.LogicalCrossProduct(node.right, node.left)
        swapped.annotations["reordered"] = True
        restore = [
            ColumnRef(right_width + i) for i in range(left_width)
        ] + [ColumnRef(i) for i in range(right_width)]
        parent.replace_child(
            node, L.LogicalProject(swapped, restore, node.schema)
        )
        return True


# ---------------------------------------------------------------------------
# GOLD-style cost-gated packs: decorrelate / or_to_union / early_filter /
# agg_single_pass.
#
# Shared design: every rule in these packs builds its candidate subtree
# *without* mutating the original, asks `_cheaper` whether the engine's
# CostModel prices the candidate strictly below the current shape (lowering
# both through the physical mapper so calibration, ANALYZE statistics, and
# cache hit ratios all participate), and only then splices it in.  The
# structural guards around each rewrite are exact — a pack that cannot
# prove soundness for a shape must not fire on it — and each guard has a
# negative regression test in tests/test_rewrite_packs.py.
# ---------------------------------------------------------------------------


def _clone_tree(node):
    """Structure-deep copy of a logical tree (payloads by reference).

    Rules that duplicate an input subtree (one copy per UNION-ALL branch)
    need independent child links so later rewrites of one branch cannot
    corrupt a sibling; table handles, bound expressions, and vtable
    instances are shared, exactly like :func:`~repro.plan.logical.lift`.
    """
    if isinstance(node, L.LogicalScan):
        twin = L.LogicalScan(
            node.table,
            node.alias,
            index=node.index,
            low=node.low,
            high=node.high,
            include_low=node.include_low,
            include_high=node.include_high,
        )
    elif isinstance(node, L.LogicalRowsScan):
        twin = L.LogicalRowsScan(node.schema, node.rows_data, node.name)
    elif isinstance(node, L.LogicalVTableScan):
        twin = L.LogicalVTableScan(
            node.instance, asynchronous=node.asynchronous, on_error=node.on_error
        )
    elif isinstance(node, L.LogicalFilter):
        twin = L.LogicalFilter(_clone_tree(node.child), node.predicate)
    elif isinstance(node, L.LogicalProject):
        twin = L.LogicalProject(
            _clone_tree(node.child), list(node.expressions), node.schema
        )
    elif isinstance(node, L.LogicalAggregate):
        twin = L.LogicalAggregate(
            _clone_tree(node.child), node.group_exprs, node.specs, node.schema
        )
    elif isinstance(node, L.LogicalDistinct):
        twin = L.LogicalDistinct(_clone_tree(node.child))
    elif isinstance(node, L.LogicalSort):
        twin = L.LogicalSort(_clone_tree(node.child), node.keys)
    elif isinstance(node, L.LogicalLimit):
        twin = L.LogicalLimit(_clone_tree(node.child), node.count)
    elif isinstance(node, L.LogicalReqSync):
        twin = L.LogicalReqSync(
            _clone_tree(node.child),
            stream=node.stream,
            preserve_order=node.preserve_order,
        )
    elif isinstance(node, L.LogicalJoin):
        twin = L.LogicalJoin(
            _clone_tree(node.left), _clone_tree(node.right), node.predicate
        )
    elif isinstance(node, L.LogicalDependentJoin):
        twin = L.LogicalDependentJoin(
            _clone_tree(node.left), _clone_tree(node.right), node.binding_columns
        )
    elif isinstance(node, L.LogicalCrossProduct):
        twin = L.LogicalCrossProduct(_clone_tree(node.left), _clone_tree(node.right))
    elif isinstance(node, L.LogicalUnion):
        twin = L.LogicalUnion(_clone_tree(node.left), _clone_tree(node.right))
    else:  # pragma: no cover - new node types must be added here
        raise PlanError("cannot clone logical node {!r}".format(node))
    twin.annotations.update(node.annotations)
    return twin


def _pure_predicate(expr):
    """Is *expr* deterministic, local, and safe to re-evaluate/duplicate?

    The whitelist covers exactly the closed expression algebra over
    literals and column references.  Subquery predicates (their subplans
    carry execution state and may reach external calls) and any
    expression class this module does not know — the extension point for
    non-deterministic or external-call predicates — are *impure*, so the
    ``early_filter``/``or_to_union`` rewrites refuse to move or clone
    them.
    """
    if isinstance(expr, (Literal, ColumnRef)):
        return True
    if isinstance(expr, (Comparison, BinaryOp)):
        return _pure_predicate(expr.left) and _pure_predicate(expr.right)
    if isinstance(expr, (Conjunction, Disjunction)):
        return all(_pure_predicate(term) for term in expr.terms)
    if isinstance(expr, Negation):
        return _pure_predicate(expr.term)
    if isinstance(expr, (LikePredicate, NullCheck)):
        return _pure_predicate(expr.expr)
    return False


def _local_only(node):
    """No external scans, synchronizers, or dependent joins below *node*."""
    return not any(
        isinstance(
            n, (L.LogicalVTableScan, L.LogicalReqSync, L.LogicalDependentJoin)
        )
        for n in L.walk(node)
    )


def _plan_seconds(model, node):
    """Price a logical subtree by lowering it through the physical mapper."""
    from repro.plan.physical import ExecOptions, lower

    return model.seconds(lower(node, ExecOptions()))


def _cheaper(ctx, before, after):
    """The cost gate: does the model price *after* strictly below *before*?

    Gating prices both shapes under a ``hash_joins``-enabled clone of the
    engine's model, because lowering upgrades clean equi-joins to hash
    joins at runtime and a gate blind to that would never accept a
    decorrelation.  No model on the context (rule engines driven outside
    the planner) means no gate — the structural guards alone decide.
    Pricing failures (subtrees the model cannot walk) refuse the rewrite.
    """
    model = getattr(ctx, "cost_model", None)
    if model is None:
        return True
    gate = model.clone()
    gate.hash_joins = True
    try:
        return _plan_seconds(gate, after) < _plan_seconds(gate, before)
    except Exception:
        return False


_SARGABLE_OPS = ("=", "<", "<=", ">", ">=")
_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _term_bound(term):
    """``(column_index, op, constant)`` for a sargable comparison, else None.

    Normalizes ``const op col`` to ``col flip(op) const``; NULL and
    boolean constants are never sargable.
    """
    if not isinstance(term, Comparison) or term.op not in _SARGABLE_OPS:
        return None
    pairs = (
        (term.left, term.right, term.op),
        (term.right, term.left, _FLIP_OP.get(term.op, term.op)),
    )
    for column_side, const_side, op in pairs:
        if (
            isinstance(column_side, ColumnRef)
            and isinstance(const_side, Literal)
            and const_side.value is not None
            and not isinstance(const_side.value, bool)
        ):
            return column_side.index, op, const_side.value
    return None


def _bound_window(op, value):
    """``(low, high, include_low, include_high)`` window for one bound."""
    if op == "=":
        return (value, value, True, True)
    if op == ">":
        return (value, None, False, True)
    if op == ">=":
        return (value, None, True, True)
    if op == "<":
        return (None, value, True, False)
    return (None, value, True, True)  # "<="


def _disjoint_windows(disjunction):
    """Exact duplicate-safety analysis for ``or_to_union``.

    Returns the shared column index when every term of *disjunction* is a
    sargable comparison on the *same* column whose value windows are
    pairwise disjoint.  Then each input row satisfies at most one term
    (no duplicates across UNION-ALL branches, so no unsound compensation
    predicate is ever needed), and a row that makes any term NULL makes
    every term NULL (the whole disjunction was NULL — dropped — and every
    branch drops it too).  Anything the analysis cannot *prove* disjoint
    — different columns, mixed value types, overlapping or double-open
    windows, non-comparison terms, NULL literals — returns None and the
    split never fires.
    """
    if len(disjunction.terms) < 2:
        return None
    column = None
    string_valued = None
    windows = []
    for term in disjunction.terms:
        bound = _term_bound(term)
        if bound is None:
            return None
        index, op, value = bound
        if column is None:
            column, string_valued = index, isinstance(value, str)
        elif index != column or isinstance(value, str) != string_valued:
            return None
        windows.append(_bound_window(op, value))
    windows.sort(key=lambda w: (0,) if w[0] is None else (1, w[0]))
    for (_, ah, _, aih), (bl, _, bil, _) in zip(windows, windows[1:]):
        if ah is None or bl is None:
            return None  # an unbounded side must overlap its neighbor
        if ah > bl or (ah == bl and aih and bil):
            return None
    return column


def _index_access(filter_node):
    """Replay access-path selection under *filter_node*.

    When the filter sits on a bare (un-indexed) stored-table scan and
    some of its sargable conjuncts fit one of the table's indexes, absorb
    them into an indexed window — the same :class:`_IndexBounds` folding
    the planner uses at build time, re-run because a rewrite just exposed
    new single-table conjuncts.  Returns the replacement subtree
    (IndexScan, optionally under a residual filter) or None.
    """
    child = filter_node.child
    if not isinstance(child, L.LogicalScan) or child.index is not None:
        return None
    from repro.plan.planner import _IndexBounds

    for index in getattr(child.table, "indexes", None) or ():
        column = None
        for i, col in enumerate(child.schema):
            if col.name.lower() == index.column_name.lower():
                column = i
                break
        if column is None:
            continue
        column_type = child.schema[column].type
        bounds = _IndexBounds()
        absorbed, kept = [], []
        for term in _split_conjuncts(filter_node.predicate):
            bound = _term_bound(term)
            if (
                bound is not None
                and bound[0] == column
                and column_type.is_numeric == isinstance(bound[2], (int, float))
                and bounds.tighten(bound[1], bound[2])
            ):
                absorbed.append(term)
            else:
                kept.append(term)
        if not absorbed:
            continue
        scan = L.LogicalScan(
            child.table,
            child.alias,
            index=index,
            low=bounds.low,
            high=bounds.high,
            include_low=bounds.include_low,
            include_high=bounds.include_high,
        )
        remainder = make_conjunction(kept)
        return L.LogicalFilter(scan, remainder) if remainder is not None else scan
    return None


class DecorrelateInToJoin(Rule):
    """``decorrelate``: an ``x IN (subquery)`` filter conjunct becomes a
    join against the deduplicated subquery — a grouped semi-join.

    ``Filter[x IN S](child)`` rewrites to
    ``Project[child cols](Join[x = s](child, Distinct(S)))``: the
    Distinct keeps matched rows from multiplying, the equi-join shape is
    what the executor upgrades to a hash join under the columnar layout,
    and NULL probes / NULL candidates drop on both sides (a NULL never
    equals anything, and ``NULL IN S`` is never True).  Guards — each one
    a soundness boundary, not a heuristic:

    - non-negated only (``NOT IN`` over a NULL-containing list is
      three-valued in a way an anti-join here would not reproduce);
    - the probe must be a bare column reference;
    - the subplan must lift into the algebra and be fully local (no
      external scans whose call behavior the duplicate evaluation in a
      join build would change);
    - probe and candidate column types must agree (``IN`` compares
      mismatched types loosely as non-matches; a join predicate raises).
    """

    name = "decorrelate.in_to_join"

    def matches(self, node, ctx):
        return self._target(node) is not None

    def _target(self, node):
        if not isinstance(node, L.LogicalFilter):
            return None
        conjuncts = _split_conjuncts(node.predicate)
        for position, term in enumerate(conjuncts):
            if not isinstance(term, InSubqueryPredicate) or term.negated:
                continue
            if not isinstance(term.expr, ColumnRef):
                continue
            try:
                lifted = L.lift(term.subplan)
            except PlanError:
                continue
            if len(lifted.schema) != 1 or not _local_only(lifted):
                continue
            probe_type = node.child.schema[term.expr.index].type
            if probe_type.is_numeric != lifted.schema[0].type.is_numeric:
                continue
            return conjuncts, position, lifted
        return None

    def apply(self, node, ctx):
        conjuncts, position, lifted = self._target(node)
        probe = conjuncts[position]
        rest = conjuncts[:position] + conjuncts[position + 1 :]
        child = node.child
        width = len(child.schema)
        join = L.LogicalJoin(
            child,
            L.LogicalDistinct(lifted),
            Comparison("=", ColumnRef(probe.expr.index), ColumnRef(width)),
        )
        keep = [
            ColumnRef(i, child.schema[i].qualified_name()) for i in range(width)
        ]
        candidate = L.LogicalProject(join, keep, child.schema)
        if rest:
            candidate = L.LogicalFilter(candidate, make_conjunction(rest))
        if not _cheaper(ctx, node, candidate):
            return False
        ctx.parent_of(node).replace_child(node, candidate)
        return True


class SplitDisjunctionToUnion(Rule):
    """``or_to_union``: a filter whose predicate contains a provably
    disjoint same-column disjunction splits into one UNION-ALL branch
    per disjunct, each a conjunctive filter over its own copy of the
    input — and, when the input is a bare scan with a matching index,
    each branch collapses to a narrow index window.

    Exactness rests entirely on :func:`_disjoint_windows`: disjoint
    windows mean no row satisfies two branches (UNION ALL introduces no
    duplicates, so no NULL-unsound ``AND NOT other`` compensation is
    needed) and NULL rows drop everywhere.  The whole predicate must be
    pure (it is re-evaluated once per branch) and the input subtree
    local-only (it is cloned per branch; duplicating external scans
    would multiply calls).
    """

    name = "or_to_union.split_disjunction"

    def matches(self, node, ctx):
        return self._target(node) is not None

    def _target(self, node):
        if not isinstance(node, L.LogicalFilter):
            return None
        if node.annotations.get("agg_single_pass_merged"):
            return None  # don't ping-pong with agg_single_pass.merge_union
        if not _pure_predicate(node.predicate) or not _local_only(node.child):
            return None
        conjuncts = _split_conjuncts(node.predicate)
        for position, term in enumerate(conjuncts):
            if isinstance(term, Disjunction) and _disjoint_windows(term) is not None:
                return conjuncts, position
        return None

    def apply(self, node, ctx):
        conjuncts, position = self._target(node)
        disjunction = conjuncts[position]
        rest = conjuncts[:position] + conjuncts[position + 1 :]
        branches = []
        for term in disjunction.terms:
            branch = L.LogicalFilter(
                _clone_tree(node.child), make_conjunction([term] + rest)
            )
            branches.append(_index_access(branch) or branch)
        union = branches[0]
        for branch in branches[1:]:
            union = L.LogicalUnion(union, branch)
            union.annotations["or_to_union"] = True
        if not _cheaper(ctx, node, union):
            return False
        ctx.parent_of(node).replace_child(node, union)
        return True


class PushFilterBelowJoin(Rule):
    """``early_filter``: move pure single-side conjuncts of a filter
    below the binary operator underneath it — including the *outer* side
    of a dependent join, where fewer outer rows mean fewer external
    calls, which is where a calibrated latency profile really bites.

    Impure conjuncts (subquery predicates, unknown expression classes —
    the non-deterministic/external-call guard) and conjuncts straddling
    both sides stay put.  The dependent join's inner side is never
    touched: its bindings come from the outer tuple.  Cost-gated, so
    ANALYZE statistics showing a non-selective predicate (nothing
    saved, one more operator) refuse the push.
    """

    name = "early_filter.push_below_join"

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalFilter):
            return False
        child = node.child
        if isinstance(child, (L.LogicalCrossProduct, L.LogicalJoin)):
            right_ok = True
        elif isinstance(child, L.LogicalDependentJoin):
            right_ok = False
        else:
            return False
        left_width = len(child.left.schema)
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            if not refs or not _pure_predicate(term):
                continue
            if max(refs) < left_width or (right_ok and min(refs) >= left_width):
                return True
        return False

    def apply(self, node, ctx):
        child = node.child
        right_ok = not isinstance(child, L.LogicalDependentJoin)
        left_width = len(child.left.schema)
        left_terms, right_terms, kept = [], [], []
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            pure = bool(refs) and _pure_predicate(term)
            if pure and max(refs) < left_width:
                left_terms.append(term)
            elif pure and right_ok and min(refs) >= left_width:
                right_terms.append(term.remap({i: i - left_width for i in refs}))
            else:
                kept.append(term)
        binary = _clone_tree(child)
        if left_terms:
            pushed = L.LogicalFilter(binary.left, make_conjunction(left_terms))
            binary.replace_child(binary.left, _index_access(pushed) or pushed)
        if right_terms:
            pushed = L.LogicalFilter(binary.right, make_conjunction(right_terms))
            binary.replace_child(binary.right, _index_access(pushed) or pushed)
        remainder = make_conjunction(kept)
        candidate = (
            L.LogicalFilter(binary, remainder) if remainder is not None else binary
        )
        if not _cheaper(ctx, node, candidate):
            return False
        ctx.parent_of(node).replace_child(node, candidate)
        return True


class DeriveJoinConstraint(Rule):
    """``early_filter``: derive the transitive constant constraint across
    an equi-join.  ``l = r AND l op const`` pins ``r op const`` on the
    other side too — any inner row violating it could only pair with an
    outer row the original predicate rejects — so the derived filter
    installs directly on that side's input (upgrading to an index window
    when one matches) while the original predicate stays for exactness.

    Derivations are remembered per join (``early_filter_derived``), so a
    gated refusal is retried but an accepted derivation never loops.
    """

    name = "early_filter.derive_join_filter"

    def matches(self, node, ctx):
        return self._target(node) is not None

    def _target(self, node):
        if not isinstance(node, L.LogicalJoin):
            return None
        derived = node.annotations.setdefault("early_filter_derived", set())
        conjuncts = _split_conjuncts(node.predicate)
        left_width = len(node.left.schema)
        equalities = []
        for term in conjuncts:
            if isinstance(term, Comparison) and term.is_equijoin():
                li, ri = sorted((term.left.index, term.right.index))
                if li < left_width <= ri:
                    equalities.append((li, ri))
        if not equalities:
            return None
        for term in conjuncts:
            bound = _term_bound(term)
            if bound is None:
                continue
            index, op, value = bound
            for li, ri in equalities:
                if index == li:
                    side, target = "right", ri - left_width
                elif index == ri:
                    side, target = "left", li
                else:
                    continue
                mirrored = Comparison(op, ColumnRef(target), Literal(value))
                key = (side, mirrored.sql())
                if key not in derived:
                    return side, mirrored, key
        return None

    def apply(self, node, ctx):
        side, mirrored, key = self._target(node)
        left, right = _clone_tree(node.left), _clone_tree(node.right)
        if side == "left":
            pushed = L.LogicalFilter(left, mirrored)
            left = _index_access(pushed) or pushed
        else:
            pushed = L.LogicalFilter(right, mirrored)
            right = _index_access(pushed) or pushed
        candidate = L.LogicalJoin(left, right, node.predicate)
        candidate.annotations.update(node.annotations)
        if not _cheaper(ctx, node, candidate):
            return False
        # The annotation set is shared between node and candidate, so the
        # derivation is remembered wherever the join ends up.
        node.annotations["early_filter_derived"].add(key)
        ctx.parent_of(node).replace_child(node, candidate)
        return True


class IndexAccessFromFilter(Rule):
    """``early_filter``: replay access-path selection for a filter whose
    sargable conjuncts match an unused index — rewrites (and lifted
    legacy plans) expose these shapes after the planner already chose
    its scans.  Cost-gated like every rule in the pack."""

    name = "early_filter.index_access"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalFilter) and _index_access(node) is not None

    def apply(self, node, ctx):
        candidate = _index_access(node)
        if candidate is None or not _cheaper(ctx, node, candidate):
            return False
        ctx.parent_of(node).replace_child(node, candidate)
        return True


def _order_exact_aggregate(node):
    """May *node*'s aggregate consume its input in any order, exactly?

    COUNT/MIN/MAX are order-insensitive over any type; SUM/AVG are exact
    under reordering only for integer inputs (float accumulation order
    changes low-order bits).  Group emission order may still change —
    SQL row order without ORDER BY is unspecified — but values may not.
    """
    child_schema = node.children[0].schema
    for spec in node.specs:
        func = spec.func.lower()
        if func in ("count", "min", "max"):
            continue
        expr = getattr(spec, "expr", None)
        if expr is None:
            return False
        from repro.relational.types import DataType

        if expr.result_type(child_schema) is not DataType.INT:
            return False
    return True


class DropDistinctOverAggregate(Rule):
    """``agg_single_pass``: SELECT DISTINCT over a grouped aggregate is a
    dead pass — aggregate output is already unique per group key.

    Fires on ``Distinct(Aggregate)`` directly, and on
    ``Distinct(Project(Aggregate))`` when the projection is pure column
    references that keep *every* group column (then any two output rows
    still differ in a group column).  A global aggregate (no GROUP BY)
    emits exactly one row, so any projection of it is trivially unique.
    """

    name = "agg_single_pass.drop_distinct"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalDistinct):
            return False
        child = node.child
        if isinstance(child, L.LogicalAggregate):
            return True
        if isinstance(child, L.LogicalProject) and isinstance(
            child.child, L.LogicalAggregate
        ):
            if not all(isinstance(e, ColumnRef) for e in child.expressions):
                return False
            kept = {e.index for e in child.expressions}
            groups = len(child.child.group_exprs)
            return set(range(groups)) <= kept
        return False

    def apply(self, node, ctx):
        if not _cheaper(ctx, node, node.child):
            return False
        ctx.parent_of(node).replace_child(node, node.child)
        return True


class SkipSortBelowAggregate(Rule):
    """``agg_single_pass``: a Sort feeding an order-oblivious consumer
    (hash aggregate, duplicate elimination) is dead work.  Aggregates
    must additionally be order-exact (see :func:`_order_exact_aggregate`)
    so float accumulation order cannot change values."""

    name = "agg_single_pass.skip_sort"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        if not isinstance(node, (L.LogicalAggregate, L.LogicalDistinct)):
            return False
        if not isinstance(node.children[0], L.LogicalSort):
            return False
        if isinstance(node, L.LogicalAggregate) and not _order_exact_aggregate(node):
            return False
        return True

    def apply(self, node, ctx):
        sort = node.children[0]
        candidate = _clone_tree(node)
        candidate.replace_child(candidate.children[0], _clone_tree(sort.child))
        if not _cheaper(ctx, node, candidate):
            return False
        node.replace_child(sort, sort.child)
        return True


def _union_branches(node):
    """Flatten a UNION-ALL chain into its branch list."""
    if isinstance(node, L.LogicalUnion):
        return _union_branches(node.left) + _union_branches(node.right)
    return [node]


class MergeUnionAggregate(Rule):
    """``agg_single_pass``: an aggregate over a UNION ALL of disjointly
    filtered copies of the *same* input collapses into one grouped pass
    over a single disjunctive filter — the multi-scan shape GOLD's
    single-pass aggregation targets.

    Exactness needs all three: structurally identical branch inputs,
    pure branch predicates, and :func:`_disjoint_windows` over the
    combined disjunction (each row fed to the aggregate exactly as many
    times as before).  The aggregate must be order-exact, and unions the
    ``or_to_union`` pack itself produced are skipped (the two rules are
    strict-inequality gated on the same model, so they can never
    ping-pong — but skipping saves the re-pricing).
    """

    name = "agg_single_pass.merge_union"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        return self._target(node) is not None

    def _target(self, node):
        if not isinstance(node, L.LogicalAggregate):
            return None
        union = node.child
        if not isinstance(union, L.LogicalUnion):
            return None
        if union.annotations.get("or_to_union"):
            return None
        if not _order_exact_aggregate(node):
            return None
        branches = _union_branches(union)
        if len(branches) < 2:
            return None
        first = branches[0]
        if not isinstance(first, L.LogicalFilter) or not _local_only(first.child):
            return None
        for branch in branches:
            if not isinstance(branch, L.LogicalFilter):
                return None
            if not _pure_predicate(branch.predicate):
                return None
            if not (branch is first or branch.child == first.child):
                return None
        merged = Disjunction([b.predicate for b in branches])
        if _disjoint_windows(merged) is None:
            return None
        return branches

    def apply(self, node, ctx):
        branches = self._target(node)
        merged = L.LogicalFilter(
            _clone_tree(branches[0].child),
            Disjunction([b.predicate for b in branches]),
        )
        merged.annotations["agg_single_pass_merged"] = True
        candidate = L.LogicalAggregate(
            merged, node.group_exprs, node.specs, node.schema
        )
        if not _cheaper(ctx, node, candidate):
            return False
        ctx.parent_of(node).replace_child(node, candidate)
        return True


#: Opt-in packs, keyed for ``PlannerOptions(logical_rules=...)``.
PUSHDOWN_PACK = (PushFilterThroughReorderable, PushFilterIntoProduct)
PRUNE_PACK = (ComposeProjections, RemoveIdentityProject)
REORDER_PACK = (ReorderProductBySize,)
DECORRELATE_PACK = (DecorrelateInToJoin,)
OR_TO_UNION_PACK = (SplitDisjunctionToUnion,)
EARLY_FILTER_PACK = (
    PushFilterBelowJoin,
    DeriveJoinConstraint,
    IndexAccessFromFilter,
)
AGG_SINGLE_PASS_PACK = (
    DropDistinctOverAggregate,
    SkipSortBelowAggregate,
    MergeUnionAggregate,
)

PACKS = {
    "pushdown": PUSHDOWN_PACK,
    "prune": PRUNE_PACK,
    "reorder": REORDER_PACK,
    "decorrelate": DECORRELATE_PACK,
    "or_to_union": OR_TO_UNION_PACK,
    "early_filter": EARLY_FILTER_PACK,
    "agg_single_pass": AGG_SINGLE_PASS_PACK,
}


def parse_rules_spec(raw):
    """Parse a comma-separated pack spec (CLI ``--rules``, ``$REPRO_RULES``).

    Pack names in any order, deduplicated; ``all`` expands to every
    registered pack.  Empty/blank means no opt-in packs.
    """
    names = []
    for name in (raw or "").split(","):
        name = name.strip()
        if not name:
            continue
        if name == "all":
            names.extend(sorted(PACKS))
        elif name in PACKS:
            names.append(name)
        else:
            raise PlanError(
                "unknown rule pack {!r}; options: all, {}".format(
                    name, ", ".join(sorted(PACKS))
                )
            )
    return tuple(dict.fromkeys(names))


def default_rules():
    """Opt-in rule packs from ``$REPRO_RULES`` (unset/empty = none —
    the default pipeline keeps the seed's exact plan shapes)."""
    return parse_rules_spec(os.environ.get("REPRO_RULES", ""))


def resolve_packs(logical_rules):
    """Expand ``PlannerOptions.logical_rules`` into engine groups.

    Accepts pack names (``"pushdown"``), Rule classes, or Rule
    instances, in any mix; returns a list with one group holding all
    resolved rules (they are mutually independent; group granularity
    only matters for restart priority).
    """
    group = []
    for entry in logical_rules or ():
        if isinstance(entry, str):
            try:
                pack = PACKS[entry]
            except KeyError:
                raise ValueError(
                    "unknown rule pack {!r}; options: {}".format(
                        entry, ", ".join(sorted(PACKS))
                    )
                )
            group.extend(rule() for rule in pack)
        elif isinstance(entry, Rule):
            group.append(entry)
        elif isinstance(entry, type) and issubclass(entry, Rule):
            group.append(entry())
        else:
            raise TypeError(
                "logical_rules entries must be pack names, Rule classes, "
                "or Rule instances (got {!r})".format(entry)
            )
    return [group] if group else []
