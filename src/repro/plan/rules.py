"""Rule-driven optimization over the logical algebra.

This is layer 2 of the planning stack (see :mod:`repro.plan.logical`):
a small fixed-point rule engine plus rule packs that re-express the
repository's plan transformations — most importantly the paper's full
ReqSync placement algorithm (Section 4.5: *Insertion → Percolation →
Consolidation*, with clash rules 1–3 and the enabling rewrites) — as
:class:`Rule` objects over :class:`~repro.plan.logical.LogicalNode`
trees.

Engine
------

A :class:`RuleEngine` holds an ordered list of *priority groups*; each
group is an ordered list of rules.  One optimization step scans the tree
(preorder for ``top_down`` rules, postorder for ``bottom_up`` rules) and
fires the first rule that matches *and* changes the tree; the engine
then restarts from the highest-priority group.  The run terminates at a
fixed point (no rule in any group fires) or when every rule's fire
budget is exhausted.  This restart discipline reproduces the seed
rewriter's control flow exactly: the ReqSync pack's groups are
``[[insert], [consolidate], [percolation rules]]``, matching the seed's
"consolidate-once eagerly, then advance the first ReqSync found in
preorder, then restart" loop.

Each firing is recorded as a :class:`RuleFiring` (with before/after node
counts — surfaced by ``explain(form="rules")``), emitted on the obs
tracer as a ``plan.rule_fired`` event, and counted on the metrics
registry as ``planner.rules_fired{rule=...}``.

Rule packs
----------

:func:`reqsync_pack`
    The paper's placement algorithm.  Runs by default on the
    asynchronous path; behavior-preserving with respect to the seed
    implementation (verified by golden snapshots and an A/B structural
    diff against the frozen legacy rewriter in
    ``tests/test_rule_equivalence.py``).
:data:`PUSHDOWN_PACK`, :data:`PRUNE_PACK`, :data:`REORDER_PACK`
    Classic relational rewrites (predicate pushdown, projection
    pruning/identity elimination, size-based cross-product reordering).
    These are *opt-in* via ``PlannerOptions(logical_rules=...)`` — the
    default pipeline keeps the seed's exact plan shapes.
"""

from repro.obs.trace import PLAN_RULE_FIRED
from repro.plan import logical as L
from repro.relational.expr import ColumnRef, Conjunction, make_conjunction

TOP_DOWN = "top_down"
BOTTOM_UP = "bottom_up"

#: Default per-rule fire budget; generous, but bounds runaway rewrites.
DEFAULT_FIRE_BUDGET = 1000


class _Root:
    """Sentinel parent above the real root, so every node has a parent."""

    def __init__(self, child):
        self.child = child
        self.children = (child,)
        self.schema = child.schema

    def replace_child(self, old, new):
        assert old is self.child
        self.child = new
        self.children = (new,)
        self.schema = new.schema


class RuleContext:
    """Per-scan state handed to rules: parent links and the knobs."""

    def __init__(self, root, parents, settings=None):
        self.root = root
        self._parents = parents
        self.settings = settings

    def parent_of(self, node):
        return self._parents.get(id(node))

    def grandparent_of(self, node):
        parent = self.parent_of(node)
        if parent is None or isinstance(parent, _Root):
            return None
        return self._parents.get(id(parent))

    def is_left_child(self, parent, node):
        return getattr(parent, "left", None) is node

    def left_arity(self, parent):
        return len(parent.left.schema)


class RuleFiring:
    """Record of one rule application (shown by ``explain(form="rules")``)."""

    __slots__ = ("rule", "before_nodes", "after_nodes")

    def __init__(self, rule, before_nodes, after_nodes):
        self.rule = rule
        self.before_nodes = before_nodes
        self.after_nodes = after_nodes

    def as_dict(self):
        return {
            "rule": self.rule,
            "before_nodes": self.before_nodes,
            "after_nodes": self.after_nodes,
        }

    def __repr__(self):
        return "<RuleFiring {} {}->{}>".format(
            self.rule, self.before_nodes, self.after_nodes
        )


class Rule:
    """One rewrite: ``matches(node, ctx)`` guards ``apply(node, ctx)``.

    ``apply`` mutates the tree through ``replace_child`` and returns
    True when it changed anything (a rule may match yet discover the
    rewrite is not possible — e.g. a clashing selection that cannot be
    hoisted — in which case it returns False and the scan continues).

    ``direction`` chooses the scan order used when driving this rule:
    ``top_down`` (preorder, the default — percolation wants the
    *highest* ReqSync first) or ``bottom_up`` (postorder — composition
    rules that shrink subtrees converge faster bottom-up).
    """

    name = "rule"
    direction = TOP_DOWN

    def matches(self, node, ctx):  # pragma: no cover - interface
        raise NotImplementedError

    def apply(self, node, ctx):  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self):
        return "<Rule {}>".format(self.name)


class RuleEngine:
    """Fixed-point driver over priority groups of rules.

    *groups* is an ordered list of rule lists.  ``run`` returns the
    optimized root; firings accumulate on :attr:`firings`.
    """

    def __init__(
        self,
        groups,
        settings=None,
        fire_budget=DEFAULT_FIRE_BUDGET,
        tracer=None,
        metrics=None,
        query_id=None,
    ):
        self.groups = [list(group) for group in groups]
        self.settings = settings
        self.fire_budget = fire_budget
        self.tracer = tracer
        self.metrics = metrics
        self.query_id = query_id
        self.firings = []
        self.exhausted = set()
        self._fires = {}

    # -- public API -----------------------------------------------------------

    def run(self, node):
        """Optimize *node* to a fixed point; returns the (new) root node."""
        root = _Root(node)
        changed = True
        while changed:
            changed = False
            for group in self.groups:
                if self._scan_group(root, group):
                    changed = True
                    break  # restart from the highest-priority group
        return root.child

    def rules(self):
        for group in self.groups:
            yield from group

    # -- driver ---------------------------------------------------------------

    def _scan_group(self, root, group):
        """Fire at most one rule from *group*; True when the tree changed."""
        active = [r for r in group if not self._budget_spent(r)]
        if not active:
            return False
        top_down = [r for r in active if r.direction == TOP_DOWN]
        bottom_up = [r for r in active if r.direction == BOTTOM_UP]
        if top_down and self._scan(root, top_down, postorder=False):
            return True
        if bottom_up and self._scan(root, bottom_up, postorder=True):
            return True
        return False

    def _scan(self, root, rules, postorder):
        parents = {id(c): p for p, c in L.walk_with_parents(root.child, root)}
        ctx = RuleContext(root, parents, self.settings)
        order = list(L.walk(root.child))
        if postorder:
            order.reverse()
        for node in order:
            for rule in rules:
                if self._budget_spent(rule):
                    continue
                if not rule.matches(node, ctx):
                    continue
                before = L.node_count(root.child)
                if rule.apply(node, ctx):
                    self._record(rule, before, L.node_count(root.child))
                    return True
        return False

    def _budget_spent(self, rule):
        if self._fires.get(rule.name, 0) >= self.fire_budget:
            self.exhausted.add(rule.name)
            return True
        return False

    def _record(self, rule, before, after):
        self._fires[rule.name] = self._fires.get(rule.name, 0) + 1
        self.firings.append(RuleFiring(rule.name, before, after))
        if self.tracer is not None:
            self.tracer.emit(
                PLAN_RULE_FIRED,
                query_id=self.query_id,
                rule=rule.name,
                before_nodes=before,
                after_nodes=after,
            )
        if self.metrics is not None:
            self.metrics.inc("planner.rules_fired", rule=rule.name)


# ---------------------------------------------------------------------------
# The ReqSync pack — the paper's Insertion / Percolation / Consolidation.
# ---------------------------------------------------------------------------


def _filled_under(reqsync):
    """The filled-attribute set A_i of *reqsync* (in its child's schema)."""
    return L.placeholder_columns(reqsync.child)


def _filled_in_parent(reqsync, parent, ctx):
    """Translate A_i into *parent*'s output coordinates."""
    filled = _filled_under(reqsync)
    if isinstance(
        parent, (L.LogicalCrossProduct, L.LogicalJoin, L.LogicalDependentJoin)
    ) and not ctx.is_left_child(parent, reqsync):
        offset = ctx.left_arity(parent)
        return {i + offset for i in filled}
    return set(filled)


def _swap_up(grandparent, parent, reqsync):
    """``gp -> parent -> ... reqsync ...`` becomes
    ``gp -> reqsync -> parent -> ...`` (reqsync's old child)."""
    parent.replace_child(reqsync, reqsync.child)
    reqsync.child = parent
    reqsync.children = (parent,)
    reqsync.schema = parent.schema
    # Hand the (now schema-consistent) reqsync to the grandparent last, so
    # its _refresh_schema sees the post-swap schema.
    grandparent.replace_child(parent, reqsync)


class _ReqSyncRule(Rule):
    """Base for percolation rules: match a ReqSync under a movable parent."""

    parent_type = None

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalReqSync):
            return False
        parent = ctx.parent_of(node)
        if parent is None or isinstance(parent, (_Root, L.LogicalReqSync)):
            return False
        if not isinstance(parent, self.parent_type):
            return False
        return self.admits(node, parent, ctx)

    def admits(self, reqsync, parent, ctx):
        return True

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        _swap_up(ctx.parent_of(parent), parent, node)
        return True


class InsertReqSync(Rule):
    """Insertion: EVScan -> ReqSync over AEVScan (paper step 1).

    Matching a *synchronous* virtual-table scan, it flips the scan to
    asynchronous (the lowered AEVScan registers calls and emits
    placeholders) and caps it with a ReqSync that waits for them.
    """

    name = "reqsync.insert"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalVTableScan) and not node.asynchronous

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        scan = L.LogicalVTableScan(node.instance, asynchronous=True)
        scan.annotations.update(node.annotations)
        stream = bool(ctx.settings.stream) if ctx.settings is not None else False
        parent.replace_child(node, L.LogicalReqSync(scan, stream=stream))
        return True


class ConsolidateReqSyncs(Rule):
    """Consolidation: merge ReqSync directly over ReqSync (paper step 3).

    One ReqSync manages any number of pending calls per tuple (Section
    4.4), so stacked synchronizers collapse; order preservation is OR'd.
    """

    name = "reqsync.consolidate"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalReqSync) and isinstance(
            node.child, L.LogicalReqSync
        )

    def apply(self, node, ctx):
        inner = node.child
        node.preserve_order = node.preserve_order or inner.preserve_order
        node.replace_child(inner, inner.child)
        return True


class PercolateAboveFilter(_ReqSyncRule):
    """Percolation past a non-clashing selection."""

    name = "reqsync.percolate_filter"
    parent_type = L.LogicalFilter

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return not (parent.predicate.referenced_columns() & filled)


class HoistClashingSelection(_ReqSyncRule):
    """Enabling rewrite: hoist a clashing selection above *its* parent.

    Clash rule 1 blocks ReqSync under a selection that reads a filled
    attribute; but the selection itself may commute upward (through
    filters, sorts, distincts, and — with a predicate remap — past
    binary joins), clearing the way for the next percolation step.
    """

    name = "reqsync.hoist_selection"
    parent_type = L.LogicalFilter

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return bool(parent.predicate.referenced_columns() & filled)

    def apply(self, node, ctx):
        filter_op = ctx.parent_of(node)
        target = ctx.parent_of(filter_op)
        if target is None or isinstance(target, (_Root, L.LogicalReqSync)):
            return False
        great = ctx.parent_of(target)
        if great is None:
            return False
        if isinstance(
            target, (L.LogicalFilter, L.LogicalSort, L.LogicalDistinct)
        ):
            predicate = filter_op.predicate
        elif isinstance(
            target,
            (L.LogicalCrossProduct, L.LogicalJoin, L.LogicalDependentJoin),
        ):
            if ctx.is_left_child(target, filter_op):
                predicate = filter_op.predicate
            else:
                offset = ctx.left_arity(target)
                refs = filter_op.predicate.referenced_columns()
                predicate = filter_op.predicate.remap(
                    {i: i + offset for i in refs}
                )
        else:
            return False
        # Splice the selection out of its slot, then re-create it (with
        # the remapped predicate) above the operator it commuted past.
        target.replace_child(filter_op, filter_op.child)
        great.replace_child(target, L.LogicalFilter(target, predicate))
        return True


class PercolateAboveProject(_ReqSyncRule):
    """Percolation past a projection, guarded by clash rules 1 and 2."""

    name = "reqsync.percolate_project"
    parent_type = L.LogicalProject

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        kept = {
            e.index for e in parent.expressions if isinstance(e, ColumnRef)
        }
        if not filled <= kept:
            return False  # clash rule 2: projection drops a filled attr
        computed = set()
        for expr in parent.expressions:
            if not isinstance(expr, ColumnRef):
                computed |= expr.referenced_columns()
        # clash rule 1: a computed output depends on a filled attribute.
        return not (computed & filled)


class PercolateAboveDependentJoin(_ReqSyncRule):
    """Percolation past a dependent join (blocked when the inner side's
    bindings read a filled attribute of the outer)."""

    name = "reqsync.percolate_depjoin"
    parent_type = L.LogicalDependentJoin

    def admits(self, reqsync, parent, ctx):
        if ctx.is_left_child(parent, reqsync):
            filled = _filled_in_parent(reqsync, parent, ctx)
            if set(parent.binding_columns.values()) & filled:
                return False
        return True


class JoinToSelectionOverCrossProduct(_ReqSyncRule):
    """Enabling rewrite: clashing join -> selection over cross-product
    (the paper's Example 3).  The ReqSync can then rise through the
    cross-product while the selection stays above."""

    name = "reqsync.join_to_selection"
    parent_type = L.LogicalJoin

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return bool(parent.predicate.referenced_columns() & filled)

    def apply(self, node, ctx):
        join = ctx.parent_of(node)
        grandparent = ctx.parent_of(join)
        product = L.LogicalCrossProduct(join.left, join.right)
        grandparent.replace_child(join, L.LogicalFilter(product, join.predicate))
        return True


class PercolateAboveJoin(_ReqSyncRule):
    """Percolation past a non-clashing join."""

    name = "reqsync.percolate_join"
    parent_type = L.LogicalJoin

    def admits(self, reqsync, parent, ctx):
        filled = _filled_in_parent(reqsync, parent, ctx)
        return not (parent.predicate.referenced_columns() & filled)


class PercolateAboveCrossProduct(_ReqSyncRule):
    """Percolation past oblivious binary operators (never clash)."""

    name = "reqsync.percolate_product"
    parent_type = (L.LogicalCrossProduct, L.LogicalUnion)


class PullAboveSortOrdered(_ReqSyncRule):
    """Extension: pull ReqSync above a Sort whose keys do not read a
    filled attribute, switching to order-preserving emission so the
    sorted order survives (``pull_above_order_sensitive=True``)."""

    name = "reqsync.pull_above_sort"
    parent_type = L.LogicalSort

    def admits(self, reqsync, parent, ctx):
        settings = ctx.settings
        if settings is None or not getattr(
            settings, "pull_above_order_sensitive", False
        ):
            return False
        filled = _filled_in_parent(reqsync, parent, ctx)
        keys = set()
        for expr, _ in parent.keys:
            keys |= expr.referenced_columns()
        return not (keys & filled)

    def apply(self, node, ctx):
        node.preserve_order = True
        return super().apply(node, ctx)


def reqsync_pack(settings=None):
    """Priority groups implementing the paper's placement algorithm.

    Group order reproduces the seed rewriter: insertion first, then
    eager consolidation (when enabled), then the percolation rules —
    each firing restarts from the top, so adjacent ReqSyncs merge
    before either floats to the top of the plan as a no-op.
    Aggregate/Distinct (clash rule 3) and Limit (counting) have no
    rule: ReqSync simply never rises past them.
    """
    consolidate = settings is None or getattr(settings, "consolidate", True)
    groups = [[InsertReqSync()]]
    if consolidate:
        groups.append([ConsolidateReqSyncs()])
    groups.append(
        [
            PercolateAboveFilter(),
            HoistClashingSelection(),
            PercolateAboveProject(),
            PercolateAboveDependentJoin(),
            JoinToSelectionOverCrossProduct(),
            PercolateAboveJoin(),
            PercolateAboveCrossProduct(),
            PullAboveSortOrdered(),
        ]
    )
    return groups


# ---------------------------------------------------------------------------
# Opt-in relational packs (PlannerOptions(logical_rules=...)).
# ---------------------------------------------------------------------------


def _split_conjuncts(predicate):
    if isinstance(predicate, Conjunction):
        terms = []
        for term in predicate.terms:
            terms.extend(_split_conjuncts(term))
        return terms
    return [predicate]


class PushFilterIntoProduct(Rule):
    """Predicate pushdown: route conjuncts of a filter over a binary
    join/product to the side they reference; one-sided right conjuncts
    are remapped into the right child's coordinates."""

    name = "pushdown.filter_into_product"

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalFilter):
            return False
        if not isinstance(
            node.child, (L.LogicalCrossProduct, L.LogicalJoin)
        ):
            return False
        left_width = len(node.child.left.schema)
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            if refs and (
                max(refs) < left_width or min(refs) >= left_width
            ):
                return True
        return False

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        binary = node.child
        left_width = len(binary.left.schema)
        left_terms, right_terms, kept = [], [], []
        for term in _split_conjuncts(node.predicate):
            refs = term.referenced_columns()
            if refs and max(refs) < left_width:
                left_terms.append(term)
            elif refs and min(refs) >= left_width:
                right_terms.append(
                    term.remap({i: i - left_width for i in refs})
                )
            else:
                kept.append(term)
        if left_terms:
            binary.replace_child(
                binary.left,
                L.LogicalFilter(binary.left, make_conjunction(left_terms)),
            )
        if right_terms:
            binary.replace_child(
                binary.right,
                L.LogicalFilter(binary.right, make_conjunction(right_terms)),
            )
        if kept:
            node.predicate = make_conjunction(kept)
            node._refresh_schema()
        else:
            parent.replace_child(node, binary)
        return True


class PushFilterThroughReorderable(Rule):
    """Predicate pushdown through order/duplicate-oblivious unaries
    (Sort, Distinct) — a selection commutes with both.  Limit is *not*
    reorderable: filtering before the cutoff changes the result."""

    name = "pushdown.filter_through_unary"

    def matches(self, node, ctx):
        return isinstance(node, L.LogicalFilter) and isinstance(
            node.child, (L.LogicalSort, L.LogicalDistinct)
        )

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        unary = node.child
        node.replace_child(unary, unary.child)
        unary.replace_child(unary.child, node)
        parent.replace_child(node, unary)
        return True


class ComposeProjections(Rule):
    """Projection pruning: collapse a pass-through projection over
    another projection by substituting the inner expressions."""

    name = "prune.compose_projections"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        return (
            isinstance(node, L.LogicalProject)
            and isinstance(node.child, L.LogicalProject)
            and all(isinstance(e, ColumnRef) for e in node.expressions)
        )

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        inner = node.child
        composed = [inner.expressions[e.index] for e in node.expressions]
        parent.replace_child(
            node, L.LogicalProject(inner.child, composed, node.schema)
        )
        return True


class RemoveIdentityProject(Rule):
    """Projection pruning: drop a projection that passes every input
    column through unchanged (same order, same names)."""

    name = "prune.identity_project"
    direction = BOTTOM_UP

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalProject):
            return False
        child_schema = node.child.schema
        if len(node.expressions) != len(child_schema):
            return False
        for i, expr in enumerate(node.expressions):
            if not (isinstance(expr, ColumnRef) and expr.index == i):
                return False
        return list(node.schema.names()) == list(child_schema.names())

    def apply(self, node, ctx):
        ctx.parent_of(node).replace_child(node, node.child)
        return True


class ReorderProductBySize(Rule):
    """Cost-based reordering: put the smaller stored table on the outer
    (left) side of a cross product, with a compensating projection that
    restores the original column order."""

    name = "reorder.product_by_size"

    def matches(self, node, ctx):
        if not isinstance(node, L.LogicalCrossProduct):
            return False
        if node.annotations.get("reordered"):
            return False
        left, right = node.left, node.right
        if not (
            isinstance(left, L.LogicalScan) and isinstance(right, L.LogicalScan)
        ):
            return False
        return right.table.row_count() < left.table.row_count()

    def apply(self, node, ctx):
        parent = ctx.parent_of(node)
        left_width = len(node.left.schema)
        right_width = len(node.right.schema)
        swapped = L.LogicalCrossProduct(node.right, node.left)
        swapped.annotations["reordered"] = True
        restore = [
            ColumnRef(right_width + i) for i in range(left_width)
        ] + [ColumnRef(i) for i in range(right_width)]
        parent.replace_child(
            node, L.LogicalProject(swapped, restore, node.schema)
        )
        return True


#: Opt-in packs, keyed for ``PlannerOptions(logical_rules=...)``.
PUSHDOWN_PACK = (PushFilterThroughReorderable, PushFilterIntoProduct)
PRUNE_PACK = (ComposeProjections, RemoveIdentityProject)
REORDER_PACK = (ReorderProductBySize,)

PACKS = {
    "pushdown": PUSHDOWN_PACK,
    "prune": PRUNE_PACK,
    "reorder": REORDER_PACK,
}


def resolve_packs(logical_rules):
    """Expand ``PlannerOptions.logical_rules`` into engine groups.

    Accepts pack names (``"pushdown"``), Rule classes, or Rule
    instances, in any mix; returns a list with one group holding all
    resolved rules (they are mutually independent; group granularity
    only matters for restart priority).
    """
    group = []
    for entry in logical_rules or ():
        if isinstance(entry, str):
            try:
                pack = PACKS[entry]
            except KeyError:
                raise ValueError(
                    "unknown rule pack {!r}; options: {}".format(
                        entry, ", ".join(sorted(PACKS))
                    )
                )
            group.extend(rule() for rule in pack)
        elif isinstance(entry, Rule):
            group.append(entry)
        elif isinstance(entry, type) and issubclass(entry, Rule):
            group.append(entry())
        else:
            raise TypeError(
                "logical_rules entries must be pack names, Rule classes, "
                "or Rule instances (got {!r})".format(entry)
            )
    return [group] if group else []
