"""Virtual-table usage analysis.

Given a parsed query and the catalog, work out — per virtual-table
occurrence — how many term columns (*n*) the query uses, which WHERE
conjuncts provide its inputs (template, term constants, rank limits,
dependent equi-joins), and which conjuncts remain as ordinary predicates.
This implements the paper's "the number of columns is a function of the
given query" semantics plus the default-SearchExp / default-Rank rules.
"""

import re

from repro.sql import ast
from repro.plan.binder import collect_names, conjuncts_of
from repro.util.errors import BindingError, PlanError

_TERM_RE = re.compile(r"^t(\d+)$")
_TEMPLATE_PARAM_RE = re.compile(r"%(\d+)")

SEARCH_EXP = "searchexp"
RANK = "rank"


class VTableUsage:
    """Per-occurrence analysis result for one virtual table."""

    def __init__(self, alias):
        self.alias = alias
        self.n = 0
        self.template = None  # constant SearchExp, if any
        self.rank_limit = None  # max row count from Rank predicates
        self.constant_terms = {}  # "T3" -> constant
        self.dependent_terms = {}  # "T1" -> ast.Name of the providing column
        self.consumed = []  # conjunct ASTs absorbed into the scan


def _term_index(name):
    match = _TERM_RE.match(name.lower())
    return int(match.group(1)) if match else None


def _qualifier_matches(name_node, alias, sole_vtable):
    """Does *name_node* refer to the vtable *alias*?

    Unqualified references (the paper's Query 1 writes bare ``T1``) are
    attributed to the only virtual table when there is exactly one.
    """
    if name_node.qualifier is not None:
        return name_node.qualifier.lower() == alias.lower()
    return sole_vtable


def analyze_vtables(query, vtable_aliases):
    """Analyze every vtable occurrence.

    *vtable_aliases* is the list of FROM aliases that are virtual tables
    (search-style ones with SearchExp/Ti; WebFetch-style tables are
    analyzed by :func:`analyze_url_vtable`).  Returns
    ``(usages, residual_conjuncts)``.
    """
    sole = len(vtable_aliases) == 1
    usages = {alias: VTableUsage(alias) for alias in vtable_aliases}
    conjuncts = conjuncts_of(query.where)

    # Pass 1: find n for each vtable from every Ti reference in the query.
    for node in _all_expressions(query):
        for name in collect_names(node):
            index = _term_index(name.name)
            if index is None:
                continue
            for alias, usage in usages.items():
                if _qualifier_matches(name, alias, sole):
                    usage.n = max(usage.n, index)

    residual = []
    for conjunct in conjuncts:
        if not _try_consume(conjunct, usages, sole):
            residual.append(conjunct)

    # Template parameters can push n higher than the referenced columns.
    for usage in usages.values():
        if usage.template is not None:
            for match in _TEMPLATE_PARAM_RE.finditer(usage.template):
                usage.n = max(usage.n, int(match.group(1)))

    return usages, residual


def _all_expressions(query):
    expressions = []
    for item in query.select_items:
        if not isinstance(item.expr, ast.Star):
            expressions.append(item.expr)
    if query.where is not None:
        expressions.append(query.where)
    expressions.extend(query.group_by)
    if query.having is not None:
        expressions.append(query.having)
    for order in query.order_by:
        expressions.append(order.expr)
    return expressions


def _try_consume(conjunct, usages, sole):
    """Absorb *conjunct* into a vtable usage if it is an input binding."""
    if not isinstance(conjunct, ast.Cmp):
        return False
    for left, right in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
        if not isinstance(left, ast.Name):
            continue
        for alias, usage in usages.items():
            if not _qualifier_matches(left, alias, sole):
                continue
            lower = left.name.lower()
            if lower == SEARCH_EXP and conjunct.op == "=" and isinstance(right, ast.Const):
                if not isinstance(right.value, str):
                    raise PlanError("SearchExp must be bound to a string")
                usage.template = right.value
                usage.consumed.append(conjunct)
                return True
            if lower == RANK and isinstance(right, ast.Const):
                limit = _rank_limit(conjunct.op, right.value, right is conjunct.right)
                if limit is not None:
                    usage.rank_limit = (
                        limit
                        if usage.rank_limit is None
                        else min(usage.rank_limit, limit)
                    )
                    usage.consumed.append(conjunct)
                    return True
                return False  # e.g. Rank = 3: keep as a residual filter
            index = _term_index(left.name)
            if index is not None and conjunct.op == "=":
                name = "T{}".format(index)
                if isinstance(right, ast.Const):
                    if not isinstance(right.value, str):
                        raise PlanError(
                            "{}.{} must be bound to a string".format(alias, name)
                        )
                    usage.constant_terms[name] = right.value
                    usage.consumed.append(conjunct)
                    return True
                if isinstance(right, ast.Name):
                    # Could itself be another vtable's term column; the
                    # planner validates providers, we just record it.
                    usage.dependent_terms[name] = right
                    usage.consumed.append(conjunct)
                    return True
    return False


def _rank_limit(op, value, name_on_left):
    """Translate a Rank comparison into a max row count, if possible."""
    if not isinstance(value, int):
        return None
    # Normalize to "Rank <op> value".
    if not name_on_left:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        op = flip.get(op, op)
    if op == "<=":
        return value
    if op == "<":
        return value - 1
    return None


def validate_bindings(usage, instance):
    """Check that every input of *instance* was bound by the query."""
    missing = [
        param
        for param in instance.dependent_params
        if param not in usage.dependent_terms and param not in usage.constant_terms
    ]
    if missing:
        raise BindingError(
            "virtual table {} has unbound inputs {}; bind them with "
            "constants or equi-joins".format(usage.alias, missing)
        )
