"""Plan construction: SQL AST -> logical algebra -> physical operators.

``Planner.plan_logical(query)`` turns a parsed SELECT into a
:mod:`repro.plan.logical` tree:

1. FROM items resolve to stored tables or virtual-table occurrences.
2. Virtual-table usage analysis (:mod:`repro.plan.analysis`) fixes each
   occurrence's arity *n*, template, rank limit, and input bindings.
3. Relations are joined left-deep in FROM order (the paper's prototype
   lets users control join order this way); ``reorder=True`` instead
   topologically sorts so every virtual table follows its binding
   providers.
4. Predicates are pushed to the lowest operator whose schema can bind
   them; virtual tables hang off dependent joins.
5. GROUP BY/aggregates, HAVING, DISTINCT, ORDER BY (with hidden sort
   columns for non-projected keys), and LIMIT complete the plan.

``Planner.optimize(node)`` then runs the opt-in relational rule packs
(``PlannerOptions(logical_rules=...)``) through the
:mod:`repro.plan.rules` engine, and ``Planner.plan(query)`` — the
historical entry point — composes all three layers: build, optimize,
then :func:`repro.plan.physical.lower` to executable operators.

The output is a *synchronous* plan (EVScan leaves); asynchronous
iteration is the :func:`repro.plan.rules.reqsync_pack` applied over the
logical form (or, for legacy physical plans, through the
:func:`repro.asynciter.rewrite.apply_asynchronous_iteration` adapter).
"""

from repro.exec import AggregateSpec
from repro.plan import logical as L
from repro.plan.analysis import analyze_vtables, validate_bindings
from repro.plan.binder import Binder, collect_aggregates, collect_names
from repro.plan.physical import ExecOptions, lower
from repro.relational.expr import ColumnRef, make_conjunction
from repro.relational.schema import Column, Schema
from repro.sql import ast
from repro.util.errors import BindingError, PlanError


class PlannerOptions:
    """Planner knobs."""

    def __init__(
        self,
        reorder=False,
        use_indexes=True,
        cost_reorder=False,
        on_error="raise",
        batch_size=None,
        batch_layout=None,
        shards=None,
        parallelism=None,
        logical_rules=None,
    ):
        #: Reorder FROM items so virtual tables follow their providers
        #: (otherwise the FROM order must already be feasible).
        self.reorder = reorder
        #: Use a B+tree index scan when a sargable predicate (qualified
        #: column vs constant, or any column in single-table queries)
        #: matches an index.
        self.use_indexes = use_indexes
        #: With ``reorder``, additionally order stored tables smallest
        #: first (by row count) instead of FROM order — a coarse
        #: cost-based heuristic for nested-loop plans.
        self.cost_reorder = cost_reorder
        #: Graceful-degradation policy for EVScan call failures in
        #: synchronous plans ("raise" | "drop" | "null") — must match the
        #: ReqSync policy for sync/async result equivalence under faults.
        #: (Kept as a back-compat kwarg; the single source of truth at
        #: lowering time is :class:`repro.plan.physical.ExecOptions`.)
        self.on_error = on_error
        #: Batch granularity stamped over every operator of a produced
        #: plan (``None`` = leave the per-operator default, i.e. 256 or
        #: the ``REPRO_BATCH_SIZE`` environment override).  ``1``
        #: degenerates batching to the exact row-at-a-time schedule.
        self.batch_size = batch_size
        #: Batch container stamped over every operator of a produced plan
        #: (``"columnar"``/``"row"``; ``None`` = the per-operator
        #: default, i.e. columnar or the ``REPRO_BATCH_LAYOUT``
        #: environment override).  Semantically invisible.
        self.batch_layout = batch_layout
        #: Search-tier shard count (``None`` = defer to the engine /
        #: ``REPRO_SHARDS``; ``1`` = the unsharded monolith).  Carried
        #: for knob resolution — the web tier, not the planner, acts on
        #: it — and priced by the cost model's scatter waves.
        self.shards = shards
        #: Intra-query worker parallelism (``None`` = defer to the
        #: engine / ``REPRO_PARALLELISM``; ``1`` = sequential).  At
        #: ``> 1`` lowering fans eligible local scan chains out over an
        #: :class:`~repro.exec.exchange.Exchange`.
        self.parallelism = parallelism
        #: Opt-in logical rule packs run by ``Planner.optimize`` — pack
        #: names (``"pushdown"``/``"prune"``/``"reorder"``), Rule
        #: classes, or Rule instances (see :data:`repro.plan.rules.PACKS`).
        #: ``None``/empty keeps the seed pipeline's exact plan shapes.
        self.logical_rules = tuple(logical_rules or ())

    def exec_options(self):
        """The consolidated execution knobs this planner configuration implies."""
        return ExecOptions.from_knobs(planner_options=self)


class _Relation:
    """One FROM item after catalog resolution."""

    def __init__(self, alias, table=None, vdef=None):
        self.alias = alias
        self.table = table
        self.vdef = vdef
        self.usage = None  # for vtables
        self.instance = None

    @property
    def is_vtable(self):
        return self.vdef is not None


class Planner:
    """Plans queries over one database plus a virtual-table catalog."""

    def __init__(self, database, vtable_catalog=None, options=None):
        self.database = database
        self.vtable_catalog = {
            name.lower(): vdef for name, vdef in (vtable_catalog or {}).items()
        }
        self.options = options or PlannerOptions()

    # -- public API -----------------------------------------------------------

    def plan(self, query):
        """Build the physical plan for a parsed SELECT statement.

        The historical entry point, now a composition of the three
        planning layers: ``plan_logical`` (algebra construction),
        ``optimize`` (opt-in rule packs), and
        :func:`repro.plan.physical.lower`.
        """
        node, _ = self.optimize(self.plan_logical(query))
        return lower(node, self.options.exec_options())

    def plan_logical(self, query):
        """Build the (unoptimized) logical plan for a parsed SELECT."""
        relations = self._resolve_from(query)
        usages, residual = self._analyze(query, relations)
        relations = self._order_relations(query, relations)
        plan, residual = self._build_join_tree(query, relations, residual)
        return self._finish(query, plan, residual)

    def optimize(self, node, tracer=None, metrics=None, query_id=None, cost_model=None):
        """Run the configured opt-in rule packs over *node*.

        Returns ``(optimized_node, firings)``.  With no
        ``logical_rules`` configured this is the identity — the default
        pipeline preserves the seed planner's exact plan shapes.

        *cost_model* feeds the cost-gated packs (decorrelate /
        or_to_union / early_filter / agg_single_pass); a calibrated
        engine passes its own model so measured latencies and statistics
        steer the gates.  ``None`` falls back to a static default model,
        so standalone planners still gate structurally-sound rewrites on
        estimated work.
        """
        from repro.plan.rules import RuleEngine, resolve_packs

        groups = resolve_packs(self.options.logical_rules)
        if not groups:
            return node, []
        if cost_model is None:
            from repro.plan.cost import CostModel

            cost_model = CostModel(latency_mean=0.05)
        engine = RuleEngine(
            groups,
            tracer=tracer,
            metrics=metrics,
            query_id=query_id,
            cost_model=cost_model,
        )
        node = engine.run(node)
        return node, engine.firings

    # -- FROM resolution ------------------------------------------------------------

    def _resolve_from(self, query):
        relations = []
        seen = set()
        for ref in query.from_tables:
            alias = ref.binding_name
            if alias.lower() in seen:
                raise PlanError("duplicate FROM alias {!r}".format(alias))
            seen.add(alias.lower())
            if self.database.has_table(ref.table):
                relations.append(_Relation(alias, table=self.database.table(ref.table)))
            elif ref.table.lower() in self.vtable_catalog:
                relations.append(
                    _Relation(alias, vdef=self.vtable_catalog[ref.table.lower()])
                )
            else:
                raise PlanError("unknown table {!r}".format(ref.table))
        return relations

    def _analyze(self, query, relations):
        search_aliases = [
            r.alias for r in relations if r.is_vtable and r.vdef.uses_search_terms
        ]
        usages, residual = analyze_vtables(query, search_aliases)
        for relation in relations:
            if not relation.is_vtable:
                continue
            if relation.vdef.uses_search_terms:
                usage = usages[relation.alias]
            else:
                usage, residual = self._analyze_url_vtable(
                    query, relation, residual
                )
            relation.usage = usage
            relation.instance = relation.vdef.instantiate(
                relation.alias,
                usage.n,
                template=usage.template,
                rank_limit=usage.rank_limit,
            )
            relation.instance.fixed_bindings.update(usage.constant_terms)
            validate_bindings(usage, relation.instance)
        return usages, residual

    def _analyze_url_vtable(self, query, relation, residual):
        """Bindings for WebFetch-style tables (single ``Url`` input)."""
        from repro.plan.analysis import VTableUsage

        usage = VTableUsage(relation.alias)
        input_names = {n.lower(): n for n in relation.vdef.input_names(0)}
        remaining = []
        for conjunct in residual:
            consumed = False
            if isinstance(conjunct, ast.Cmp) and conjunct.op == "=":
                pairs = (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                )
                for left, right in pairs:
                    if (
                        isinstance(left, ast.Name)
                        and left.name.lower() in input_names
                        and (
                            left.qualifier is None
                            or left.qualifier.lower() == relation.alias.lower()
                        )
                    ):
                        param = input_names[left.name.lower()]
                        if isinstance(right, ast.Const):
                            usage.constant_terms[param] = right.value
                            consumed = True
                            break
                        if isinstance(right, ast.Name):
                            usage.dependent_terms[param] = right
                            consumed = True
                            break
            if not consumed:
                remaining.append(conjunct)
        return usage, remaining

    # -- join ordering --------------------------------------------------------------------

    def _order_relations(self, query, relations):
        if not self.options.reorder:
            return relations
        candidates = list(relations)
        if self.options.cost_reorder:
            # Stored tables smallest-first keeps nested-loop outer sides
            # small; stable sort preserves FROM order among equals and
            # leaves virtual tables' relative order to the binding pass.
            candidates.sort(
                key=lambda r: r.table.row_count() if r.table is not None else float("inf")
            )
        placed = []
        placed_aliases = set()
        pending = candidates
        while pending:
            progressed = False
            for relation in list(pending):
                if self._providers_satisfied(relation, relations, placed_aliases):
                    placed.append(relation)
                    placed_aliases.add(relation.alias.lower())
                    pending.remove(relation)
                    progressed = True
            if not progressed:
                raise BindingError(
                    "cannot order FROM items to satisfy virtual-table "
                    "bindings: {}".format([r.alias for r in pending])
                )
        return placed

    def _providers_satisfied(self, relation, all_relations, placed_aliases):
        if not relation.is_vtable:
            return True
        for provider in relation.usage.dependent_terms.values():
            alias = self._provider_alias(provider, all_relations, relation)
            if alias is None or alias.lower() not in placed_aliases:
                return False
        return True

    def _provider_alias(self, name_node, relations, consumer):
        """Which FROM alias supplies *name_node*?"""
        if name_node.qualifier is not None:
            for relation in relations:
                if relation.alias.lower() == name_node.qualifier.lower():
                    return relation.alias
            return None
        candidates = []
        for relation in relations:
            if relation is consumer:
                continue
            schema = self._relation_schema(relation)
            if schema is not None and schema.maybe_resolve(name_node.name) is not None:
                candidates.append(relation.alias)
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _relation_schema(self, relation):
        if relation.table is not None:
            return relation.table.schema.with_qualifier(relation.alias)
        if relation.instance is not None:
            return relation.instance.schema
        return None

    # -- join tree -----------------------------------------------------------------------------

    def _build_join_tree(self, query, relations, residual):
        residual = list(residual)
        sole_relation = len(relations) == 1
        plan = None
        for relation in relations:
            if relation.is_vtable:
                plan = self._attach_vtable(plan, relation)
            else:
                scan = self._access_path(relation, residual, sole_relation)
                plan = self._attach_table(plan, scan, residual)
            plan, residual = self._push_filters(plan, residual)
        if plan is None:
            raise PlanError("query has no FROM relations")
        return plan, residual

    def _access_path(self, relation, residual, sole_relation):
        """Choose IndexScan over TableScan when a sargable predicate matches.

        A predicate is sargable here when it compares an index's column
        against a constant and unambiguously refers to this relation
        (qualified with its alias, or any reference in a single-relation
        query).  Consumed conjuncts are removed from *residual*.
        """
        table = relation.table
        if not self.options.use_indexes or not getattr(table, "indexes", None):
            return L.LogicalScan(table, relation.alias)
        for index in table.indexes:
            bounds = _IndexBounds()
            consumed = []
            for conjunct in residual:
                comparisons = self._sargable_bounds(
                    conjunct, relation, index.column_name, sole_relation
                )
                if comparisons and all(
                    bounds.tighten(op, value) for op, value in comparisons
                ):
                    consumed.append(conjunct)
            if consumed:
                for conjunct in consumed:
                    residual.remove(conjunct)
                return L.LogicalScan(
                    table,
                    relation.alias,
                    index=index,
                    low=bounds.low,
                    high=bounds.high,
                    include_low=bounds.include_low,
                    include_high=bounds.include_high,
                )
        return L.LogicalScan(table, relation.alias)

    def _sargable_bounds(self, conjunct, relation, column_name, sole_relation):
        """Bounds ``[(op, constant), ...]`` if *conjunct* restricts the column.

        Handles ``col op const`` comparisons (either orientation) and
        non-negated ``col BETWEEN lo AND hi``.
        """
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            if (
                self._names_this_column(
                    conjunct.expr, relation, column_name, sole_relation
                )
                and isinstance(conjunct.low, ast.Const)
                and isinstance(conjunct.high, ast.Const)
            ):
                low, high = conjunct.low.value, conjunct.high.value
                if self._constant_fits(relation, column_name, low) and self._constant_fits(
                    relation, column_name, high
                ):
                    return [(">=", low), ("<=", high)]
            return []
        if not isinstance(conjunct, ast.Cmp):
            return []
        pairs = (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, _flip_op(conjunct.op)),
        )
        for name_side, const_side, op in pairs:
            if not self._names_this_column(
                name_side, relation, column_name, sole_relation
            ):
                continue
            if not isinstance(const_side, ast.Const) or const_side.value is None:
                continue
            if op not in ("=", "<", "<=", ">", ">="):
                continue
            if not self._constant_fits(relation, column_name, const_side.value):
                continue
            return [(op, const_side.value)]
        return []

    @staticmethod
    def _names_this_column(node, relation, column_name, sole_relation):
        if not isinstance(node, ast.Name):
            return False
        if node.name.lower() != column_name.lower():
            return False
        if node.qualifier is not None:
            return node.qualifier.lower() == relation.alias.lower()
        return sole_relation  # unqualified could belong to another relation

    @staticmethod
    def _constant_fits(relation, column_name, value):
        column_type = relation.table.schema[
            relation.table.schema.resolve(column_name)
        ].type
        if value is None or isinstance(value, bool):
            return False
        return column_type.is_numeric == isinstance(value, (int, float))

    def _attach_vtable(self, plan, relation):
        instance = relation.instance
        scan = L.LogicalVTableScan(instance)
        dependent = {}
        for param, provider in relation.usage.dependent_terms.items():
            if plan is None:
                raise BindingError(
                    "virtual table {} is first in the join order but "
                    "input {} depends on {}".format(
                        relation.alias, param, provider.sql()
                    )
                )
            try:
                index = plan.schema.resolve(provider.name, provider.qualifier)
            except PlanError:
                raise BindingError(
                    "input {} of {} is bound to {}, which is not available "
                    "earlier in the join order".format(
                        param, relation.alias, provider.sql()
                    )
                )
            dependent[param] = index
        if plan is None:
            if instance.dependent_params:
                raise BindingError(
                    "virtual table {} has dependent inputs {} but no "
                    "preceding relation".format(
                        relation.alias, instance.dependent_params
                    )
                )
            return scan
        missing = [p for p in instance.dependent_params if p not in dependent]
        if missing:
            raise BindingError(
                "virtual table {} inputs {} are unbound".format(
                    relation.alias, missing
                )
            )
        return L.LogicalDependentJoin(plan, scan, dependent)

    def _attach_table(self, plan, scan, residual):
        if plan is None:
            return scan
        combined = plan.schema.concat(scan.schema)
        binder = Binder(combined, subquery_planner=self.plan)
        join_conjuncts = []
        for conjunct in list(residual):
            names = collect_names(conjunct)
            if not names:
                continue
            if binder.can_bind(conjunct) and not Binder(
                plan.schema, subquery_planner=self.plan
            ).can_bind(conjunct):
                # Touches the new relation (not bindable before it joined).
                if collect_aggregates(conjunct):
                    continue
                join_conjuncts.append(conjunct)
                residual.remove(conjunct)
        if join_conjuncts:
            predicate = make_conjunction(
                [binder.bind(c) for c in join_conjuncts]
            )
            return L.LogicalJoin(plan, scan, predicate)
        return L.LogicalCrossProduct(plan, scan)

    def _push_filters(self, plan, residual):
        """Attach every residual conjunct that the current schema can bind."""
        binder = Binder(plan.schema, subquery_planner=self.plan)
        bound = []
        remaining = []
        for conjunct in residual:
            if collect_aggregates(conjunct):
                remaining.append(conjunct)
            elif binder.can_bind(conjunct):
                bound.append(binder.bind(conjunct))
            else:
                remaining.append(conjunct)
        if bound:
            plan = L.LogicalFilter(plan, make_conjunction(bound))
        return plan, remaining

    # -- aggregation / projection / ordering ----------------------------------------------------------

    def _finish(self, query, plan, residual):
        if residual:
            # Surface the *underlying* binding failure (unknown column,
            # malformed subquery, ...) rather than a generic complaint —
            # can_bind() swallowed it during placement.
            binder = Binder(plan.schema, subquery_planner=self.plan)
            for conjunct in residual:
                try:
                    binder.bind(conjunct)
                except PlanError as exc:
                    raise PlanError(
                        "cannot place predicate {}: {}".format(conjunct.sql(), exc)
                    )
            raise PlanError(
                "could not place predicates: {}".format(
                    [c.sql() for c in residual]
                )
            )
        aggregates = []
        for item in query.select_items:
            if not isinstance(item.expr, ast.Star):
                aggregates.extend(collect_aggregates(item.expr))
        aggregates.extend(collect_aggregates(query.having))
        for order in query.order_by:
            aggregates.extend(collect_aggregates(order.expr))

        if aggregates or query.group_by:
            plan, select_exprs, names, select_asts = self._plan_aggregation(
                query, plan, aggregates
            )
        else:
            if query.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            select_exprs, names, select_asts = self._expand_select(query, plan.schema)

        output_schema = self._output_schema(plan.schema, select_exprs, names)
        plan, output_schema = self._plan_order_and_project(
            query, plan, select_exprs, select_asts, output_schema
        )
        if query.distinct:
            plan = L.LogicalDistinct(plan)
        if query.limit is not None:
            plan = L.LogicalLimit(plan, query.limit)
        return plan

    def _expand_select(self, query, schema):
        """Returns parallel lists: bound exprs, output names, source ASTs.

        Star-expanded outputs have ``None`` ASTs (there is no per-column
        syntax to match ORDER BY items against; name matching covers them).
        """
        binder = Binder(schema)
        exprs = []
        names = []
        asts = []
        for item in query.select_items:
            if isinstance(item.expr, ast.Star):
                for i, column in enumerate(schema):
                    if item.expr.qualifier is None or (
                        column.qualifier
                        and column.qualifier.lower() == item.expr.qualifier.lower()
                    ):
                        exprs.append(ColumnRef(i, column.qualified_name()))
                        names.append(column.name)
                        asts.append(None)
                continue
            expr = binder.bind(item.expr)
            exprs.append(expr)
            names.append(self._item_name(item))
            asts.append(item.expr)
        if not exprs:
            raise PlanError("empty select list")
        return exprs, names, asts

    @staticmethod
    def _item_name(item):
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Name):
            return item.expr.name
        return item.expr.sql()

    def _output_schema(self, input_schema, exprs, names):
        columns = []
        for expr, name in zip(exprs, names):
            data_type = expr.result_type(input_schema)
            if data_type is None:
                raise PlanError("cannot type output column {!r}".format(name))
            columns.append(Column(name, data_type))
        return Schema(columns, allow_duplicates=True)

    # -- aggregation ------------------------------------------------------------------

    def _plan_aggregation(self, query, plan, aggregates):
        binder = Binder(plan.schema)
        group_asts = list(query.group_by)
        group_exprs = [binder.bind(g) for g in group_asts]
        # Unique aggregate calls, in first-appearance order.
        agg_asts = []
        for call in aggregates:
            if call not in agg_asts:
                agg_asts.append(call)
        specs = []
        for call in agg_asts:
            if call.star:
                specs.append(AggregateSpec(call.func, star=True))
            else:
                specs.append(AggregateSpec(call.func, expr=binder.bind(call.argument)))
        agg_columns = [
            Column("g{}".format(i), expr.result_type(plan.schema) or _fail_type(g))
            for i, (g, expr) in enumerate(zip(group_asts, group_exprs))
        ]
        agg_columns += [
            Column("a{}".format(i), spec.result_type(plan.schema))
            for i, spec in enumerate(specs)
        ]
        agg_schema = Schema(agg_columns)
        plan = L.LogicalAggregate(plan, group_exprs, specs, agg_schema)

        # Rebind select/having/order expressions over the aggregate output.
        rebinder = _AggregateRebinder(group_asts, agg_asts, agg_schema)
        select_exprs = []
        names = []
        asts = []
        for item in query.select_items:
            if isinstance(item.expr, ast.Star):
                raise PlanError("SELECT * cannot be combined with GROUP BY")
            select_exprs.append(rebinder.rebind(item.expr))
            names.append(self._item_name(item))
            asts.append(item.expr)
        if query.having is not None:
            plan = L.LogicalFilter(plan, rebinder.rebind(query.having))
        return plan, select_exprs, names, asts

    # -- ordering & projection ---------------------------------------------------------

    def _plan_order_and_project(
        self, query, plan, select_exprs, select_asts, output_schema
    ):
        """Project, then sort — adding hidden sort columns when needed."""
        if not query.order_by:
            return (
                L.LogicalProject(plan, select_exprs, output_schema),
                output_schema,
            )

        input_binder = Binder(plan.schema)
        sort_keys = []  # (index into extended projection, descending)
        extended_exprs = list(select_exprs)
        extended_columns = list(output_schema)
        for order in query.order_by:
            index = self._match_order_item(order.expr, select_asts, output_schema)
            if index is None:
                expr = input_binder.bind(order.expr)
                data_type = expr.result_type(plan.schema)
                extended_exprs.append(expr)
                extended_columns.append(
                    Column("__sort{}".format(len(extended_columns)), data_type)
                )
                index = len(extended_exprs) - 1
            sort_keys.append((ColumnRef(index), order.descending))

        extended_schema = Schema(extended_columns, allow_duplicates=True)
        plan = L.LogicalProject(plan, extended_exprs, extended_schema)
        plan = L.LogicalSort(plan, sort_keys)
        if len(extended_exprs) > len(select_exprs):
            # Drop the hidden sort columns.
            keep = [
                ColumnRef(i, output_schema[i].name)
                for i in range(len(select_exprs))
            ]
            plan = L.LogicalProject(plan, keep, output_schema)
        return plan, output_schema

    @staticmethod
    def _match_order_item(order_expr, select_asts, output_schema):
        """Match an ORDER BY expression to an output column, if possible.

        Matches identical select expressions, then (for unqualified names)
        unique output column names — which covers both aliases and
        ``SELECT *`` expansions, so ``Order By Count`` reuses the projected
        column instead of forcing a hidden sort column.
        """
        for i, source in enumerate(select_asts):
            if source is not None and source == order_expr:
                return i
        if isinstance(order_expr, ast.Name) and order_expr.qualifier is None:
            return output_schema.maybe_resolve(order_expr.name)
        return None


def _fail_type(group_ast):
    raise PlanError("cannot type GROUP BY expression {}".format(group_ast.sql()))


def _flip_op(op):
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


class _IndexBounds:
    """Accumulates sargable comparisons into one [low, high] window."""

    def __init__(self):
        self.low = None
        self.high = None
        self.include_low = True
        self.include_high = True
        self._have_equality = False

    def tighten(self, op, value):
        """Fold one comparison in; returns False if it cannot be absorbed."""
        if self._have_equality:
            return False  # keep further predicates as ordinary filters
        if op == "=":
            if self.low is not None or self.high is not None:
                return False
            self.low = self.high = value
            self._have_equality = True
            return True
        if op in (">", ">="):
            include = op == ">="
            if self.low is None or value > self.low or (
                value == self.low and self.include_low and not include
            ):
                self.low = value
                self.include_low = include
            return True
        if op in ("<", "<="):
            include = op == "<="
            if self.high is None or value < self.high or (
                value == self.high and self.include_high and not include
            ):
                self.high = value
                self.include_high = include
            return True
        return False


class _AggregateRebinder:
    """Rebinds expressions over the Aggregate operator's output schema.

    Group-by expressions map to the leading columns; aggregate calls map
    to the trailing ones; anything else inside must be built from those.
    """

    def __init__(self, group_asts, agg_asts, agg_schema):
        self.group_asts = group_asts
        self.agg_asts = agg_asts
        self.agg_schema = agg_schema

    def rebind(self, node):
        for i, g in enumerate(self.group_asts):
            if node == g:
                return ColumnRef(i, g.sql())
        if isinstance(node, ast.FuncCall):
            for i, call in enumerate(self.agg_asts):
                if node == call:
                    return ColumnRef(len(self.group_asts) + i, call.sql())
            raise PlanError("aggregate {} not computed".format(node.sql()))
        if isinstance(node, ast.Const):
            from repro.relational.expr import Literal

            return Literal(node.value)
        if isinstance(node, ast.Arith):
            from repro.relational.expr import BinaryOp

            return BinaryOp(node.op, self.rebind(node.left), self.rebind(node.right))
        if isinstance(node, ast.Cmp):
            from repro.relational.expr import Comparison

            return Comparison(node.op, self.rebind(node.left), self.rebind(node.right))
        if isinstance(node, ast.LogicalAnd):
            from repro.relational.expr import Conjunction

            return Conjunction([self.rebind(t) for t in node.terms])
        if isinstance(node, ast.LogicalOr):
            from repro.relational.expr import Disjunction

            return Disjunction([self.rebind(t) for t in node.terms])
        if isinstance(node, ast.LogicalNot):
            from repro.relational.expr import Negation

            return Negation(self.rebind(node.term))
        raise PlanError(
            "expression {} must be a GROUP BY expression or an "
            "aggregate".format(node.sql())
        )
