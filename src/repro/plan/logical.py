"""The logical plan algebra (IR) that sits between SQL and execution.

Three-layer planning stack
--------------------------

1. **Logical** (this module): :class:`LogicalNode` trees built by
   :meth:`repro.plan.planner.Planner.plan_logical`.  Nodes carry their
   output :class:`~repro.relational.schema.Schema`, structural
   equality/hashing, free-form per-node ``annotations``, and a
   *placeholder-attribute* analysis (:func:`placeholder_columns`) — the
   paper's "filled attribute set" A_i that drives every ReqSync clash
   rule.
2. **Rules** (:mod:`repro.plan.rules`): a fixed-point rule engine whose
   packs re-express predicate pushdown, projection pruning, join
   reordering, and the paper's full ReqSync Insertion → Percolation →
   Consolidation algorithm as :class:`~repro.plan.rules.Rule` objects
   over this algebra.
3. **Physical** (:mod:`repro.plan.physical`): :func:`~repro.plan.physical.lower`
   maps an optimized logical tree onto the existing exec operators,
   configured by one consolidated
   :class:`~repro.plan.physical.ExecOptions`.

The logical layer deliberately *carries* catalog handles (table objects,
virtual-table instances) and already-bound expression trees, so lowering
is a 1:1 structural mapping and the physical plan produced through the
stack is bit-identical in shape to what the pre-IR pipeline built.

Tree conventions mirror the physical operators: unary nodes expose
``child``, binary nodes ``left``/``right``, and every node keeps a
``children`` tuple — so analyses and rewrites can be ported between the
two layers mechanically.
"""

from repro.relational.expr import ColumnRef
from repro.util.errors import PlanError

_CHILD_SLOTS = ("child", "left", "right")


def _expr_key(expr):
    """A structural fingerprint for a bound expression (or None)."""
    if expr is None:
        return None
    try:
        return (type(expr).__name__, expr.sql())
    except Exception:  # pragma: no cover - exotic expression payloads
        return (type(expr).__name__, id(expr))


class LogicalNode:
    """Base class for all logical-plan nodes.

    Structural identity: two nodes are equal when they have the same
    class, the same :meth:`payload_key`, and structurally equal children.
    ``annotations`` is a free-form per-node dict (rule bookkeeping, cost
    notes, ...) excluded from identity.
    """

    #: Short name used by :func:`render` (defaults to the class name
    #: without the ``Logical`` prefix).
    kind = None

    def __init__(self):
        self.children = ()
        self.schema = None
        self.annotations = {}

    # -- tree plumbing (mirrors the physical operators) -----------------------

    def replace_child(self, old, new):
        """Swap *old* for *new* among this node's children (slots + tuple)."""
        replaced = False
        for slot in _CHILD_SLOTS:
            if hasattr(self, slot) and getattr(self, slot) is old:
                setattr(self, slot, new)
                replaced = True
                break
        if not replaced:
            raise PlanError(
                "logical rewrite error: child not found on {}".format(self.label())
            )
        self.children = tuple(new if c is old else c for c in self.children)
        self._refresh_schema()

    def _refresh_schema(self):
        """Recompute a derived schema after a child swap (default: none)."""

    # -- structural identity ---------------------------------------------------

    def payload_key(self):
        """Hashable payload identifying this node beyond class/children."""
        return ()

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        if self.payload_key() != other.payload_key():
            return False
        if len(self.children) != len(other.children):
            return False
        return all(a == b for a, b in zip(self.children, other.children))

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return hash(
            (type(self).__name__, self.payload_key(), tuple(hash(c) for c in self.children))
        )

    # -- rendering -------------------------------------------------------------

    def label(self):
        """One-line description used by the logical explain form."""
        return self.kind or type(self).__name__.replace("Logical", "")

    def __repr__(self):
        return "<{} {}>".format(type(self).__name__, self.label())


# -- leaves ---------------------------------------------------------------------


class LogicalScan(LogicalNode):
    """Scan of a stored table, optionally through a secondary index.

    ``index`` (plus the bound window) records the access path chosen by
    the planner; lowering maps it to ``IndexScan`` vs ``TableScan``.
    """

    def __init__(
        self,
        table,
        alias=None,
        index=None,
        low=None,
        high=None,
        include_low=True,
        include_high=True,
    ):
        super().__init__()
        self.table = table
        self.alias = alias or table.name
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.schema = table.schema.with_qualifier(self.alias)

    def payload_key(self):
        return (
            self.table.name,
            self.alias,
            self.index.column_name if self.index is not None else None,
            self.low,
            self.high,
            self.include_low,
            self.include_high,
        )

    def label(self):
        if self.index is not None:
            bounds = []
            if self.low is not None:
                bounds.append(
                    "{}{}".format(">=" if self.include_low else ">", self.low)
                )
            if self.high is not None:
                bounds.append(
                    "{}{}".format("<=" if self.include_high else "<", self.high)
                )
            return "IndexScan {} via {}({})".format(
                self.alias, self.index.column_name, ", ".join(bounds) or "all"
            )
        return "Scan {}".format(self.alias)


class LogicalRowsScan(LogicalNode):
    """Scan of in-memory rows (bench/DSQ helper plans)."""

    def __init__(self, schema, rows, name="rows"):
        super().__init__()
        self.schema = schema
        self.rows_data = rows
        self.name = name

    def payload_key(self):
        return (self.name, len(self.rows_data))

    def label(self):
        return "Rows {} ({})".format(self.name, len(self.rows_data))


class LogicalVTableScan(LogicalNode):
    """Scan of one external virtual-table instance.

    ``asynchronous`` selects the lowered operator: ``False`` is the
    paper's blocking ``EVScan``; ``True`` (set by the ReqSync insertion
    rule) lowers to ``AEVScan`` and *introduces* placeholder attributes —
    its result columns form the filled set consumed by the clash rules.
    """

    def __init__(self, instance, asynchronous=False, on_error=None):
        super().__init__()
        self.instance = instance
        self.asynchronous = asynchronous
        #: Explicit per-scan degradation policy (``None`` = take the
        #: resolved :class:`~repro.plan.physical.ExecOptions` policy).
        self.on_error = on_error
        self.schema = instance.schema

    def payload_key(self):
        return (self.instance.describe(), self.asynchronous, self.on_error)

    def label(self):
        prefix = "AVTableScan" if self.asynchronous else "VTableScan"
        return "{}: {}".format(prefix, self.instance.describe())


# -- unary ----------------------------------------------------------------------


class LogicalFilter(LogicalNode):
    def __init__(self, child, predicate):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.children = (child,)
        self.schema = child.schema

    def _refresh_schema(self):
        self.schema = self.child.schema

    def payload_key(self):
        return _expr_key(self.predicate)

    def label(self):
        return "Filter: {}".format(self.predicate.sql(self.schema))


class LogicalProject(LogicalNode):
    def __init__(self, child, expressions, schema):
        super().__init__()
        self.child = child
        self.expressions = list(expressions)
        self.children = (child,)
        self.schema = schema

    def payload_key(self):
        return (
            tuple(_expr_key(e) for e in self.expressions),
            tuple(self.schema.names()),
        )

    def label(self):
        return "Project [{}]".format(", ".join(self.schema.names()))


class LogicalAggregate(LogicalNode):
    def __init__(self, child, group_exprs, specs, schema):
        super().__init__()
        self.child = child
        self.group_exprs = list(group_exprs)
        self.specs = list(specs)
        self.children = (child,)
        self.schema = schema

    def payload_key(self):
        return (
            tuple(_expr_key(e) for e in self.group_exprs),
            tuple(spec.sql() for spec in self.specs),
        )

    def label(self):
        parts = [spec.sql(self.children[0].schema) for spec in self.specs]
        if self.group_exprs:
            parts.append(
                "group by {}".format(
                    ", ".join(
                        e.sql(self.children[0].schema) for e in self.group_exprs
                    )
                )
            )
        return "Aggregate: {}".format("; ".join(parts))


class LogicalDistinct(LogicalNode):
    def __init__(self, child):
        super().__init__()
        self.child = child
        self.children = (child,)
        self.schema = child.schema

    def _refresh_schema(self):
        self.schema = self.child.schema

    def label(self):
        return "Distinct"


class LogicalSort(LogicalNode):
    def __init__(self, child, keys):
        super().__init__()
        self.child = child
        self.keys = list(keys)
        self.children = (child,)
        self.schema = child.schema

    def _refresh_schema(self):
        self.schema = self.child.schema

    def payload_key(self):
        return tuple((_expr_key(e), bool(desc)) for e, desc in self.keys)

    def label(self):
        rendered = ", ".join(
            "{}{}".format(expr.sql(self.schema), " desc" if desc else "")
            for expr, desc in self.keys
        )
        return "Sort: {}".format(rendered)


class LogicalLimit(LogicalNode):
    def __init__(self, child, count):
        super().__init__()
        self.child = child
        self.count = count
        self.children = (child,)
        self.schema = child.schema

    def _refresh_schema(self):
        self.schema = self.child.schema

    def payload_key(self):
        return (self.count,)

    def label(self):
        return "Limit {}".format(self.count)


class LogicalReqSync(LogicalNode):
    """The logical request synchronizer (placed by the ReqSync rule pack).

    Schema-transparent; resolves every placeholder below it, so its own
    placeholder set is empty.  Lowering configures the physical
    :class:`~repro.asynciter.reqsync.ReqSync` from the node's flags plus
    the resolved :class:`~repro.plan.physical.ExecOptions`.
    """

    def __init__(self, child, stream=False, preserve_order=False):
        super().__init__()
        self.child = child
        self.stream = stream
        self.preserve_order = preserve_order
        self.children = (child,)
        self.schema = child.schema

    def _refresh_schema(self):
        self.schema = self.child.schema

    def payload_key(self):
        return (self.stream, self.preserve_order)

    def label(self):
        modes = []
        if self.stream:
            modes.append("stream")
        if self.preserve_order:
            modes.append("ordered")
        return "ReqSync{}".format(" [{}]".format(", ".join(modes)) if modes else "")


# -- binary ---------------------------------------------------------------------


class _Binary(LogicalNode):
    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right
        self.children = (left, right)
        self._refresh_schema()

    def _refresh_schema(self):
        self.schema = self.left.schema.concat(self.right.schema)


class LogicalCrossProduct(_Binary):
    def label(self):
        return "CrossProduct"


class LogicalJoin(_Binary):
    """Inner theta-join (the host system's nested-loop join)."""

    def __init__(self, left, right, predicate):
        self.predicate = predicate
        super().__init__(left, right)

    def payload_key(self):
        return _expr_key(self.predicate)

    def label(self):
        return "Join: {}".format(self.predicate.sql(self.schema))


class LogicalDependentJoin(_Binary):
    """Join whose inner side needs bindings from the current outer tuple."""

    def __init__(self, left, right, binding_columns):
        self.binding_columns = dict(binding_columns)
        super().__init__(left, right)

    def payload_key(self):
        return tuple(sorted(self.binding_columns.items()))

    def label(self):
        pairs = ", ".join(
            "{} <- {}".format(param, self.left.schema[index].qualified_name())
            for param, index in sorted(self.binding_columns.items())
        )
        return "DependentJoin: {}".format(pairs)


class LogicalUnion(_Binary):
    def _refresh_schema(self):
        self.schema = self.left.schema

    def label(self):
        return "UnionAll"


# -- analyses -------------------------------------------------------------------


def placeholder_columns(node):
    """Indexes in ``node.schema`` that may still hold placeholders.

    This is the paper's *filled attribute set* A_i: an asynchronous
    virtual-table scan introduces its result columns; a ReqSync resolves
    everything below it (empty set); joins offset the right side;
    projections translate through pass-through column references;
    aggregates always materialize concrete values.
    """
    if isinstance(node, LogicalVTableScan):
        if not node.asynchronous:
            return set()
        positions = {c.name: i for i, c in enumerate(node.instance.schema)}
        return {positions[col] for col in node.instance.result_fields}
    if isinstance(node, LogicalReqSync):
        return set()
    if isinstance(node, LogicalProject):
        below = placeholder_columns(node.child)
        filled = set()
        for out_index, expr in enumerate(node.expressions):
            if isinstance(expr, ColumnRef) and expr.index in below:
                filled.add(out_index)
        return filled
    if isinstance(node, (LogicalCrossProduct, LogicalJoin, LogicalDependentJoin)):
        left_width = len(node.left.schema)
        return placeholder_columns(node.left) | {
            i + left_width for i in placeholder_columns(node.right)
        }
    if isinstance(node, LogicalUnion):
        return placeholder_columns(node.left) | placeholder_columns(node.right)
    if isinstance(node, LogicalAggregate):
        return set()
    if node.children:
        # Unary pass-through nodes (Filter, Sort, Distinct, Limit).
        return placeholder_columns(node.children[0])
    return set()  # stored-table / rows leaves


def walk(node):
    """Preorder traversal of a logical tree."""
    yield node
    for child in node.children:
        yield from walk(child)


def walk_with_parents(node, parent=None):
    """Preorder traversal yielding ``(parent, node)`` pairs."""
    yield parent, node
    for child in node.children:
        yield from walk_with_parents(child, node)


def node_count(node):
    """Number of nodes in the tree rooted at *node*."""
    return sum(1 for _ in walk(node))


def contains_external_scan(node):
    """Does the tree contain any (sync or async) virtual-table scan?"""
    return any(isinstance(n, LogicalVTableScan) for n in walk(node))


def render(node, annotate=None, indent=0):
    """Nested textual rendering of a logical tree (the ``logical`` form).

    *annotate* is an optional callback ``node -> str`` whose non-empty
    return value is appended to the node's line as a bracketed column
    (cost notes, fired-rule notes, ...) — the same convention as
    :meth:`repro.exec.operator.Operator.explain`.
    """
    line = "{}{}".format("  " * indent, node.label())
    if annotate is not None:
        extra = annotate(node)
        if extra:
            line = "{}  [{}]".format(line, extra)
    lines = [line]
    for child in node.children:
        lines.append(render(child, annotate, indent + 1))
    return "\n".join(lines)


# -- lifting physical plans into the algebra ------------------------------------


def lift(plan):
    """Lift a *physical* operator tree into an equivalent logical tree.

    The inverse of :func:`repro.plan.physical.lower` (up to per-operator
    execution state): payloads — table handles, bound expressions,
    virtual-table instances, binding maps — are carried by reference, so
    ``lower(lift(plan))`` reproduces the exact plan shape.  Used by the
    :func:`repro.asynciter.rewrite.apply_asynchronous_iteration` adapter
    to run the rule-based optimizer over plans built by legacy paths.
    """
    # Imported here: repro.exec imports repro.relational which is
    # dependency-light, but keeping the planner importable without the
    # full exec stack is still good hygiene for this module.
    from repro.asynciter.aevscan import AEVScan
    from repro.asynciter.reqsync import ReqSync
    from repro.exec.aggregate import Aggregate
    from repro.exec.distinct import Distinct
    from repro.exec.filter import Filter
    from repro.exec.indexscan import IndexScan
    from repro.exec.joins import CrossProduct, DependentJoin, NestedLoopJoin
    from repro.exec.limit import Limit
    from repro.exec.project import Project
    from repro.exec.scans import RowsScan, TableScan
    from repro.exec.sort import Sort
    from repro.exec.union import UnionAll
    from repro.vtables.evscan import EVScan

    if isinstance(plan, IndexScan):
        return LogicalScan(
            plan.table,
            plan.qualifier,
            index=plan.index,
            low=plan.low,
            high=plan.high,
            include_low=plan.include_low,
            include_high=plan.include_high,
        )
    if isinstance(plan, TableScan):
        return LogicalScan(plan.table, plan.qualifier)
    if isinstance(plan, RowsScan):
        return LogicalRowsScan(plan.schema, plan.rows_data, plan.name)
    if isinstance(plan, EVScan):
        return LogicalVTableScan(plan.instance, on_error=plan.on_error)
    if isinstance(plan, AEVScan):
        return LogicalVTableScan(plan.instance, asynchronous=True)
    if isinstance(plan, ReqSync):
        return LogicalReqSync(
            lift(plan.child),
            stream=plan.stream,
            preserve_order=plan.preserve_order,
        )
    if isinstance(plan, Filter):
        return LogicalFilter(lift(plan.child), plan.predicate)
    if isinstance(plan, Project):
        return LogicalProject(lift(plan.child), plan.expressions, plan.schema)
    if isinstance(plan, Aggregate):
        return LogicalAggregate(
            lift(plan.child), plan.group_exprs, plan.specs, plan.schema
        )
    if isinstance(plan, Distinct):
        return LogicalDistinct(lift(plan.child))
    if isinstance(plan, Sort):
        return LogicalSort(lift(plan.child), plan.keys)
    if isinstance(plan, Limit):
        return LogicalLimit(lift(plan.child), plan.count)
    if isinstance(plan, NestedLoopJoin):
        return LogicalJoin(lift(plan.left), lift(plan.right), plan.predicate)
    if isinstance(plan, DependentJoin):
        return LogicalDependentJoin(
            lift(plan.left), lift(plan.right), plan.binding_columns
        )
    if isinstance(plan, CrossProduct):
        return LogicalCrossProduct(lift(plan.left), lift(plan.right))
    if isinstance(plan, UnionAll):
        return LogicalUnion(lift(plan.left), lift(plan.right))
    raise PlanError(
        "cannot lift physical operator {!r} into the logical algebra".format(plan)
    )
