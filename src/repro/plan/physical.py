"""Lowering: logical algebra -> the executable operator tree.

Layer 3 of the planning stack (see :mod:`repro.plan.logical`).
:func:`lower` walks an (optimized) logical tree and instantiates the
existing exec operators 1:1 — payloads (table handles, bound
expressions, virtual-table instances, binding maps) were carried by
reference through the logical layer, so the produced plan is
structurally identical to what the pre-IR pipeline built.

Execution knobs live in one place here: :class:`ExecOptions`.
Historically ``on_error`` / ``batch_size`` / ``wait_timeout`` were
threaded redundantly through ``PlannerOptions``, ``RewriteSettings``,
and the engine, with drifting defaults (``RewriteSettings(on_error=None)``
deferred to the operator default while ``PlannerOptions`` said
``"raise"`` explicitly).  :meth:`ExecOptions.from_knobs` is now the
single resolution point with a documented precedence, so the sync and
async paths always agree.
"""

from repro.util.errors import PlanError

from repro.plan import logical as L

#: Default graceful-degradation policy (matches the operator defaults).
DEFAULT_ON_ERROR = "raise"


class ExecOptions:
    """Consolidated execution knobs applied while lowering a plan.

    ``on_error``
        Graceful-degradation policy (``"raise"``/``"drop"``/``"null"``)
        stamped on every external scan and ReqSync.
    ``batch_size``
        Row granularity stamped over the lowered tree (``None`` = the
        operator default, see :func:`repro.exec.operator.set_batch_size`).
    ``batch_layout``
        Batch container stamped over the lowered tree
        (``"columnar"``/``"row"``; ``None`` = the operator default, see
        :func:`repro.exec.operator.set_batch_layout`).  Semantically
        invisible — it selects the column-kernel fast paths vs the
        row-of-tuples pipeline.
    ``wait_timeout``
        Per-wave ReqSync timeout in seconds (``None`` = operator
        default).
    ``stream``
        Default streaming mode for ReqSyncs whose logical node does not
        pin one (the rule pack always pins it, so this mostly serves
        hand-built plans).
    ``cache_tier`` / ``cache_ttl``
        The result-cache configuration the plan will execute under
        (``"off"``/``"memory"``/``"tiered"``/``"disk"`` and the default
        TTL in seconds).  Carried for introspection — ``explain`` output,
        cost models, and tests can see which cache the engine resolved —
        lowering itself never reads them (the cache is semantically
        transparent; wiring lives in the web clients and the engine).
    ``deadline``
        The query's end-to-end :class:`~repro.serve.deadline.Deadline`
        (duck-typed; ``None`` = unbounded).  Stamped on every ReqSync
        and synchronous EVScan so both the blocking wait loop and the
        sequential call path observe expiry/cancellation.
    ``shards``
        Search-tier shard count the engine resolved (carried for
        introspection and cost pricing; the web clients — not lowering —
        implement the scatter).  ``1`` = the unsharded monolith.
    ``parallelism``
        Intra-query worker count.  At ``> 1`` lowering fans eligible
        local scan chains out over an
        :class:`~repro.exec.exchange.Exchange` (order-preserving
        :class:`~repro.exec.exchange.MergeExchange` under a Sort); at
        ``1`` the produced plan is byte-identical to the sequential
        lowering.
    """

    __slots__ = (
        "on_error", "batch_size", "batch_layout", "wait_timeout", "stream",
        "cache_tier", "cache_ttl", "deadline", "shards", "parallelism",
    )

    def __init__(
        self,
        on_error=DEFAULT_ON_ERROR,
        batch_size=None,
        batch_layout=None,
        wait_timeout=None,
        stream=False,
        cache_tier=None,
        cache_ttl=None,
        deadline=None,
        shards=1,
        parallelism=1,
    ):
        if on_error not in ("raise", "drop", "null"):
            raise PlanError(
                "unknown on_error policy {!r}; expected raise/drop/null".format(
                    on_error
                )
            )
        if batch_layout is not None:
            from repro.relational.batch import BATCH_LAYOUTS

            if batch_layout not in BATCH_LAYOUTS:
                raise PlanError(
                    "unknown batch_layout {!r}; expected {}".format(
                        batch_layout, "/".join(BATCH_LAYOUTS)
                    )
                )
        if shards is not None and shards < 1:
            raise PlanError("shards must be >= 1, got {!r}".format(shards))
        if parallelism is not None and parallelism < 1:
            raise PlanError(
                "parallelism must be >= 1, got {!r}".format(parallelism)
            )
        self.on_error = on_error
        self.batch_size = batch_size
        self.batch_layout = batch_layout
        self.wait_timeout = wait_timeout
        self.stream = stream
        self.cache_tier = cache_tier
        self.cache_ttl = cache_ttl
        self.deadline = deadline
        self.shards = shards if shards is not None else 1
        self.parallelism = parallelism if parallelism is not None else 1

    @classmethod
    def from_knobs(
        cls,
        planner_options=None,
        rewrite_settings=None,
        on_error=None,
        batch_size=None,
        batch_layout=None,
        cache=None,
        deadline=None,
        shards=None,
        parallelism=None,
    ):
        """Resolve the historical knob triplet into one struct.

        Precedence (most specific wins):

        1. explicit ``on_error`` / ``batch_size`` / ``batch_layout`` /
           ``shards`` / ``parallelism`` arguments (engine-level
           overrides);
        2. ``RewriteSettings`` values, when set (non-``None``);
        3. ``PlannerOptions`` values, when set;
        4. the defaults (``"raise"`` / operator-default batch size and
           layout / ``shards=1`` / ``parallelism=1``).

        This fixes the historical drift where
        ``RewriteSettings(on_error=None)`` silently meant "operator
        default" while ``PlannerOptions`` defaulted to an explicit
        ``"raise"`` — both entry points now resolve identically.
        """
        resolved_on_error = None
        resolved_batch = None
        resolved_layout = None
        resolved_shards = None
        resolved_parallelism = None
        wait_timeout = None
        stream = False
        if planner_options is not None:
            resolved_on_error = getattr(planner_options, "on_error", None)
            resolved_batch = getattr(planner_options, "batch_size", None)
            resolved_layout = getattr(planner_options, "batch_layout", None)
            resolved_shards = getattr(planner_options, "shards", None)
            resolved_parallelism = getattr(planner_options, "parallelism", None)
        if rewrite_settings is not None:
            if getattr(rewrite_settings, "on_error", None) is not None:
                resolved_on_error = rewrite_settings.on_error
            if getattr(rewrite_settings, "batch_size", None) is not None:
                resolved_batch = rewrite_settings.batch_size
            if getattr(rewrite_settings, "batch_layout", None) is not None:
                resolved_layout = rewrite_settings.batch_layout
            if getattr(rewrite_settings, "shards", None) is not None:
                resolved_shards = rewrite_settings.shards
            if getattr(rewrite_settings, "parallelism", None) is not None:
                resolved_parallelism = rewrite_settings.parallelism
            wait_timeout = getattr(rewrite_settings, "wait_timeout", None)
            stream = bool(getattr(rewrite_settings, "stream", False))
        if on_error is not None:
            resolved_on_error = on_error
        if batch_size is not None:
            resolved_batch = batch_size
        if batch_layout is not None:
            resolved_layout = batch_layout
        if shards is not None:
            resolved_shards = shards
        if parallelism is not None:
            resolved_parallelism = parallelism
        cache_tier = None
        cache_ttl = None
        if cache is not None:
            cache_tier = getattr(cache, "tier_name", "memory")
            policy = getattr(cache, "policy", None)
            if policy is not None:
                cache_ttl = getattr(policy, "default_ttl", None)
        return cls(
            on_error=resolved_on_error or DEFAULT_ON_ERROR,
            batch_size=resolved_batch,
            batch_layout=resolved_layout,
            wait_timeout=wait_timeout,
            stream=stream,
            cache_tier=cache_tier if cache is not None else "off",
            cache_ttl=cache_ttl,
            deadline=deadline,
            shards=resolved_shards if resolved_shards is not None else 1,
            parallelism=(
                resolved_parallelism if resolved_parallelism is not None else 1
            ),
        )

    def __repr__(self):
        return (
            "ExecOptions(on_error={!r}, batch_size={!r}, batch_layout={!r}, "
            "wait_timeout={!r}, stream={!r}, cache_tier={!r}, cache_ttl={!r}, "
            "deadline={!r}, shards={!r}, parallelism={!r})".format(
                self.on_error, self.batch_size, self.batch_layout,
                self.wait_timeout, self.stream, self.cache_tier,
                self.cache_ttl, self.deadline, self.shards, self.parallelism,
            )
        )


def lower(node, options=None, context=None):
    """Lower *node* (a logical tree) to an executable operator tree.

    *context* is the :class:`~repro.asynciter.context.AsyncContext`
    required when the tree contains asynchronous nodes (AEVScan /
    ReqSync); lowering a purely synchronous tree needs none.  When
    ``options.batch_size`` is set the finished tree is stamped with it
    (exactly as the legacy pipeline did after planning + rewriting).
    """
    options = options or ExecOptions()
    plan = _lower(node, options, context)
    if options.batch_size is not None:
        from repro.exec.operator import set_batch_size

        set_batch_size(plan, options.batch_size)
    if options.batch_layout is not None:
        from repro.exec.operator import set_batch_layout

        set_batch_layout(plan, options.batch_layout)
    return plan


def _lower(node, options, context):
    # Imports are local so `repro.plan` stays importable without pulling
    # the full exec/asynciter stack at module-import time.
    from repro.exec.aggregate import Aggregate
    from repro.exec.distinct import Distinct
    from repro.exec.filter import Filter
    from repro.exec.indexscan import IndexScan
    from repro.exec.joins import CrossProduct, DependentJoin, NestedLoopJoin
    from repro.exec.limit import Limit
    from repro.exec.project import Project
    from repro.exec.scans import RowsScan, TableScan
    from repro.exec.sort import Sort
    from repro.exec.union import UnionAll

    if options.parallelism > 1:
        fanned = _try_parallel_lower(node, options, context)
        if fanned is not None:
            return fanned

    if isinstance(node, L.LogicalScan):
        if node.index is not None:
            return IndexScan(
                node.table,
                node.index,
                qualifier=node.alias,
                low=node.low,
                high=node.high,
                include_low=node.include_low,
                include_high=node.include_high,
            )
        return TableScan(node.table, node.alias)
    if isinstance(node, L.LogicalRowsScan):
        return RowsScan(node.schema, node.rows_data, node.name)
    if isinstance(node, L.LogicalVTableScan):
        return _lower_vtable_scan(node, options, context)
    if isinstance(node, L.LogicalReqSync):
        return _lower_reqsync(node, options, context)
    if isinstance(node, L.LogicalFilter):
        return Filter(_lower(node.child, options, context), node.predicate)
    if isinstance(node, L.LogicalProject):
        return Project(
            _lower(node.child, options, context), node.expressions, node.schema
        )
    if isinstance(node, L.LogicalAggregate):
        return Aggregate(
            _lower(node.child, options, context),
            node.group_exprs,
            node.specs,
            node.schema,
        )
    if isinstance(node, L.LogicalDistinct):
        return Distinct(_lower(node.child, options, context))
    if isinstance(node, L.LogicalSort):
        return Sort(_lower(node.child, options, context), node.keys)
    if isinstance(node, L.LogicalLimit):
        return Limit(_lower(node.child, options, context), node.count)
    if isinstance(node, L.LogicalJoin):
        # Join right sides are re-opened once per outer row; fanning a
        # worker pool out per open would churn threads without covering
        # any new data, so the right subtree lowers sequentially.
        return NestedLoopJoin(
            _lower(node.left, options, context),
            _lower(node.right, _sequential(options), context),
            node.predicate,
        )
    if isinstance(node, L.LogicalDependentJoin):
        return DependentJoin(
            _lower(node.left, options, context),
            _lower(node.right, _sequential(options), context),
            node.binding_columns,
        )
    if isinstance(node, L.LogicalCrossProduct):
        return CrossProduct(
            _lower(node.left, options, context),
            _lower(node.right, _sequential(options), context),
        )
    if isinstance(node, L.LogicalUnion):
        return UnionAll(
            _lower(node.left, options, context),
            _lower(node.right, options, context),
        )
    raise PlanError("cannot lower logical node {!r}".format(node))


def _sequential(options):
    """*options* with parallelism pinned to 1 (for re-opened subtrees)."""
    if options.parallelism == 1:
        return options
    return ExecOptions(
        on_error=options.on_error,
        batch_size=options.batch_size,
        batch_layout=options.batch_layout,
        wait_timeout=options.wait_timeout,
        stream=options.stream,
        cache_tier=options.cache_tier,
        cache_ttl=options.cache_ttl,
        deadline=options.deadline,
        shards=options.shards,
        parallelism=1,
    )


def _parallel_eligible(node):
    """True when *node* is a Filter/Project chain over a plain heap scan.

    Only full-table scans partition (index scans already prune pages and
    read in key order, which page partitioning would scramble), and only
    over tables exposing the batch scan API — duck-typed table stand-ins
    without ``scan_batches`` keep the historical sequential lowering.
    """
    if isinstance(node, L.LogicalScan):
        return node.index is None and callable(
            getattr(node.table, "scan_batches", None)
        )
    if isinstance(node, (L.LogicalFilter, L.LogicalProject)):
        return _parallel_eligible(node.child)
    return False


def _lower_chain_partition(node, options, context, partition):
    """Lower one per-partition replica of an eligible chain.

    Filter/Project carry no cross-row state, so replicating them per
    partition over a partitioned leaf scan computes exactly the rows the
    sequential chain would — Exchange's partition-major gather then
    restores the sequential order.
    """
    from repro.exec.filter import Filter
    from repro.exec.project import Project
    from repro.exec.scans import TableScan

    if isinstance(node, L.LogicalScan):
        return TableScan(node.table, node.alias, partition=partition)
    if isinstance(node, L.LogicalFilter):
        return Filter(
            _lower_chain_partition(node.child, options, context, partition),
            node.predicate,
        )
    if isinstance(node, L.LogicalProject):
        return Project(
            _lower_chain_partition(node.child, options, context, partition),
            node.expressions,
            node.schema,
        )
    raise PlanError(
        "node {!r} is not part of a partitionable chain".format(node)
    )


def _try_parallel_lower(node, options, context):
    """Fan an eligible subtree across ``options.parallelism`` partitions.

    Returns the Exchange-rooted operator tree, or ``None`` when *node*
    is not an eligible shape (the caller then lowers it normally and
    recurses — inner eligible subtrees still get fanned out).
    """
    from repro.exec.exchange import Exchange, MergeExchange
    from repro.exec.sort import Sort

    workers = options.parallelism
    if isinstance(node, L.LogicalSort) and _parallel_eligible(node.child):
        # Per-partition sorts + order-preserving merge: partitions are
        # contiguous page runs and Sort is stable, so merging with a
        # partition-index tie-break reproduces the global stable sort.
        partitions = [
            Sort(
                _lower_chain_partition(
                    node.child, options, context, (index, workers)
                ),
                node.keys,
            )
            for index in range(workers)
        ]
        return MergeExchange(partitions, node.keys)
    if _parallel_eligible(node):
        partitions = [
            _lower_chain_partition(node, options, context, (index, workers))
            for index in range(workers)
        ]
        return Exchange(partitions)
    return None


def _lower_vtable_scan(node, options, context):
    if node.asynchronous:
        from repro.asynciter.aevscan import AEVScan

        if context is None:
            raise PlanError(
                "lowering an asynchronous plan requires an AsyncContext"
            )
        return AEVScan(node.instance, context)
    from repro.vtables.evscan import EVScan

    on_error = node.on_error if node.on_error is not None else options.on_error
    return EVScan(node.instance, on_error=on_error, deadline=options.deadline)


def _lower_reqsync(node, options, context):
    from repro.asynciter.reqsync import ReqSync

    if context is None:
        raise PlanError("lowering a ReqSync requires an AsyncContext")
    kwargs = {"stream": node.stream, "preserve_order": node.preserve_order}
    if options.wait_timeout is not None:
        kwargs["wait_timeout"] = options.wait_timeout
    kwargs["on_error"] = options.on_error
    if options.deadline is not None:
        kwargs["deadline"] = options.deadline
    reqsync = ReqSync(_lower(node.child, options, context), context, **kwargs)
    if options.batch_size is not None:
        reqsync.batch_size = options.batch_size
    return reqsync
