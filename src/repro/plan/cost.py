"""Cost estimation for WSQ plans, including asynchronous iteration.

The paper repeatedly defers "fully addressing cost-based query
optimization in the presence of asynchronous iteration" to future work,
while cataloguing what such a model must capture (Section 4.5.4): external
calls dominate; asynchronous plans pay per *blocking wave* rather than per
call; ReqSync placement trades patch work against concurrency; enabling
rewrites (join -> selection over cross-product) add local work.

This module is that model, kept deliberately transparent:

- **Cardinalities** flow bottom-up from real table row counts through
  textbook selectivity heuristics (equality 0.05, range 0.30, ...);
  virtual tables contribute their per-call fan-out (WebCount exactly 1,
  WebPages its rank limit, ...).
- **External work** is a per-destination call count plus a *wave* count:
  a sequential plan performs one wave per call; an asynchronous plan
  performs one wave per ReqSync (all its calls overlap), widened by
  pump concurrency limits: ``waves_d = ceil(calls_d / limit_d)``.
- **Local work** counts rows processed per operator, plus the ReqSync
  patch work (buffered placeholder values), at a configurable per-row
  cost.

``CostModel.estimate`` prices any plan (sync or rewritten);
``choose_figure7_variant`` applies it to the paper's Example 2 trade-off.
"""

import math

from repro.asynciter.aevscan import AEVScan
from repro.asynciter.reqsync import ReqSync
from repro.exec.aggregate import Aggregate
from repro.exec.distinct import Distinct
from repro.exec.exchange import Exchange
from repro.exec.filter import Filter
from repro.exec.indexscan import IndexScan
from repro.exec.joins import CrossProduct, DependentJoin, NestedLoopJoin
from repro.exec.limit import Limit
from repro.exec.project import Project
from repro.exec.scans import RowsScan, TableScan
from repro.exec.sort import Sort
from repro.exec.union import UnionAll
from repro.relational.expr import (
    Comparison,
    Conjunction,
    Disjunction,
    LikePredicate,
    Literal,
    Negation,
    NullCheck,
)
from repro.vtables.evscan import EVScan

# Classic selectivity guesses (System R lineage).
EQUALITY_SELECTIVITY = 0.05
RANGE_SELECTIVITY = 0.30
LIKE_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.33


def predicate_selectivity(expr, column_stats=None):
    """Fraction of rows satisfying *expr*.

    With *column_stats* (a dict of row index ->
    :class:`~repro.storage.stats.ColumnStats` from ANALYZE) the estimate
    uses real distinct-value counts, MCV frequencies, and min/max
    interpolation; otherwise the System-R constants apply.
    """
    if isinstance(expr, Comparison):
        if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
            return 1.0 if expr.eval(()) is True else 0.0
        informed = _stats_selectivity(expr, column_stats)
        if informed is not None:
            return informed
        if expr.op == "=":
            return EQUALITY_SELECTIVITY
        if expr.op == "!=":
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(expr, Conjunction):
        product = 1.0
        for term in expr.terms:
            product *= predicate_selectivity(term, column_stats)
        return product
    if isinstance(expr, Disjunction):
        miss = 1.0
        for term in expr.terms:
            miss *= 1.0 - predicate_selectivity(term, column_stats)
        return 1.0 - miss
    if isinstance(expr, Negation):
        return 1.0 - predicate_selectivity(expr.term, column_stats)
    if isinstance(expr, LikePredicate):
        return LIKE_SELECTIVITY
    if isinstance(expr, NullCheck):
        stats = _stats_for(expr.expr, column_stats)
        if stats is not None:
            return stats.null_fraction if not expr.negated else 1 - stats.null_fraction
        return 0.1 if not expr.negated else 0.9
    return DEFAULT_SELECTIVITY


def _stats_for(expr, column_stats):
    from repro.relational.expr import ColumnRef as _ColumnRef

    if column_stats and isinstance(expr, _ColumnRef):
        return column_stats.get(expr.index)
    return None


def _stats_selectivity(comparison, column_stats):
    """ANALYZE-informed selectivity for ``col <op> literal`` shapes."""
    pairs = (
        (comparison.left, comparison.right, comparison.op),
        (comparison.right, comparison.left, _FLIP.get(comparison.op, comparison.op)),
    )
    for column_side, literal_side, op in pairs:
        stats = _stats_for(column_side, column_stats)
        if stats is None or not isinstance(literal_side, Literal):
            continue
        value = literal_side.value
        if op == "=":
            return min(1.0, stats.equality_selectivity(value))
        if op == "!=":
            return max(0.0, 1.0 - stats.equality_selectivity(value))
        estimated = stats.range_selectivity(op, value)
        if estimated is not None:
            return min(1.0, estimated)
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class PlanEstimate:
    """Bottom-up estimate for one (sub)plan."""

    __slots__ = (
        "rows", "local_rows", "calls", "waves", "patched_values", "issued",
        "wave_seconds", "column_stats",
    )

    def __init__(
        self,
        rows=0.0,
        local_rows=0.0,
        calls=None,
        waves=0.0,
        patched_values=0.0,
        issued=0.0,
        wave_seconds=0.0,
        column_stats=None,
    ):
        self.rows = rows
        self.local_rows = local_rows  # rows processed by operators
        self.calls = dict(calls or {})  # destination -> pending call count
        self.waves = waves  # blocking round-trip waves
        self.patched_values = patched_values
        self.issued = issued  # calls already folded into waves (ReqSync)
        #: Wave latency priced per destination (``waves * latency_mean``
        #: when latencies are uniform; diverges under calibration).
        self.wave_seconds = wave_seconds
        #: row index -> ColumnStats (from ANALYZE), where still traceable
        self.column_stats = dict(column_stats or {})

    def total_calls(self):
        return sum(self.calls.values())

    def merged_calls(self, other):
        merged = dict(self.calls)
        for destination, count in other.calls.items():
            merged[destination] = merged.get(destination, 0.0) + count
        return merged

    def __repr__(self):
        return (
            "PlanEstimate(rows={:.0f}, local={:.0f}, calls={}, waves={:.1f}, "
            "patched={:.0f})".format(
                self.rows, self.local_rows,
                {k: round(v, 1) for k, v in self.calls.items()},
                self.waves, self.patched_values,
            )
        )


class CostModel:
    """Prices plans in estimated seconds.

    ``latency_mean`` is the expected per-request network delay;
    ``per_destination_limits`` mirrors the pump's concurrency caps
    (``None`` = unbounded); ``cpu_per_row`` and ``cpu_per_patch`` convert
    local work to seconds.
    """

    #: Fraction of ``cpu_per_row`` attributed to per-pull iterator
    #: dispatch (the part batch execution amortizes over a whole batch).
    DISPATCH_SHARE = 0.5

    def __init__(
        self,
        latency_mean,
        per_destination_limits=None,
        global_limit=None,
        cpu_per_row=2e-6,
        cpu_per_patch=4e-6,
        call_overhead=2e-4,
        batch_size=None,
        cache=None,
        expected_hit_ratio=None,
        shards=None,
        hash_joins=False,
    ):
        self.latency_mean = latency_mean
        self.per_destination_limits = dict(per_destination_limits or {})
        self.global_limit = global_limit
        self.cpu_per_row = cpu_per_row
        self.cpu_per_patch = cpu_per_patch
        self.call_overhead = call_overhead
        #: Batch granularity the priced plans run at (``None`` or ``<= 1``
        #: = row-at-a-time, no discount — keeps historical estimates
        #: bit-identical).
        self.batch_size = batch_size
        #: Cache-aware pricing: a live cache (anything exposing
        #: ``hit_ratio()``) lets the model discount the expected fraction
        #: of external calls that will be served locally; an explicit
        #: ``expected_hit_ratio`` overrides the live estimate (useful for
        #: what-if planning before any traffic exists).  Both unset — the
        #: default — prices every call at full latency, bit-identical to
        #: the seed model.
        self.cache = cache
        self.expected_hit_ratio = expected_hit_ratio
        #: Search-tier shard count the priced engine scatters over.
        #: ``1`` (or ``None``) keeps every estimate bit-identical to the
        #: unsharded model; ``N`` prices each external call as N probes
        #: and each blocking wave at the *slowest* shard's latency (see
        #: :meth:`scatter_latency`).
        self.shards = int(shards) if shards and shards >= 1 else 1
        #: Price clean equi-joins as hash build + probe instead of the
        #: quadratic pair scan.  Off by default (keeps every historical
        #: estimate bit-identical); the rewrite packs' cost gates turn it
        #: on, since lowering upgrades exactly these joins at runtime.
        self.hash_joins = bool(hash_joins)
        #: Calibration state: a :class:`repro.obs.calibration.
        #: CalibrationProfile` attached via :meth:`apply_profile` (duck
        #: typed — anything with the same read surface works).  Empty
        #: maps/None keep every estimate bit-identical to the static
        #: model.
        self.profile = None
        self.latency_by_destination = {}
        self.fanout_by_destination = {}
        self._static = None  # pre-calibration twin, for comparisons

    @classmethod
    def from_profile(cls, profile, latency_mean=0.05, **kwargs):
        """A model whose figures come from *profile* (measured, not guessed).

        *latency_mean* and **kwargs** seed the static base (they remain
        the fallbacks for destinations the profile never observed); the
        profile then overrides everything it measured.
        """
        return cls(latency_mean, **kwargs).apply_profile(profile)

    def apply_profile(self, profile, use_observed_concurrency=False):
        """Re-price this model from *profile*; returns ``self``.

        Overrides ``latency_mean`` (sample-weighted across destinations)
        plus the per-destination latency and fan-out tables, and attaches
        the profile so :meth:`miss_fraction` can use the *observed* cache
        hit ratio.  With *use_observed_concurrency*, destinations without
        a configured pump limit adopt the trace-observed peak overlap as
        their effective width — off by default, since a low observed
        overlap may just mean light traffic, not a real ceiling.

        The first application snapshots the static figures, so
        :meth:`uncalibrated` (and explain's calibrated-vs-static column)
        can always compare against the pre-profile model.
        """
        if self._static is None:
            self._static = self.clone()
        mean = profile.latency_mean()
        if mean is not None:
            self.latency_mean = mean
        self.latency_by_destination = {
            name: calibration.latency_mean
            for name, calibration in profile.destinations.items()
            if calibration.latency_mean is not None
        }
        self.fanout_by_destination = {
            name: calibration.fanout
            for name, calibration in profile.destinations.items()
            if calibration.fanout is not None
        }
        if use_observed_concurrency:
            for name, calibration in profile.destinations.items():
                if (
                    calibration.concurrency
                    and calibration.concurrency >= 1
                    and name not in self.per_destination_limits
                ):
                    self.per_destination_limits[name] = int(calibration.concurrency)
        self.profile = profile
        return self

    @property
    def calibrated(self):
        return self.profile is not None

    def clone(self):
        """An independent copy (shares the live cache reference only)."""
        twin = CostModel(
            self.latency_mean,
            per_destination_limits=self.per_destination_limits,
            global_limit=self.global_limit,
            cpu_per_row=self.cpu_per_row,
            cpu_per_patch=self.cpu_per_patch,
            call_overhead=self.call_overhead,
            batch_size=self.batch_size,
            cache=self.cache,
            expected_hit_ratio=self.expected_hit_ratio,
            shards=self.shards,
            hash_joins=self.hash_joins,
        )
        twin.profile = self.profile
        twin.latency_by_destination = dict(self.latency_by_destination)
        twin.fanout_by_destination = dict(self.fanout_by_destination)
        return twin

    def uncalibrated(self):
        """The static model from before any profile was applied.

        Returns ``self`` if never calibrated — callers can always diff
        ``model.seconds(plan)`` against ``model.uncalibrated().seconds(plan)``.
        """
        return self._static if self._static is not None else self

    def destination_latency(self, destination):
        """Expected per-request latency for *destination* (calibrated or mean)."""
        return self.latency_by_destination.get(destination, self.latency_mean)

    def scatter_latency(self, destination):
        """Latency of one blocking wave against *destination*, shard-aware.

        Unsharded this is just :meth:`destination_latency`.  With
        ``shards=N`` a wave is a scatter that settles when its slowest
        shard answers: calibrated per-shard entries (the broker observes
        service times under destinations ``{dest}:shard{i}``) price the
        wave at their max; shards the profile never measured fall back
        to the destination's own (or mean) latency.
        """
        base = self.destination_latency(destination)
        if self.shards <= 1:
            return base
        from repro.web.sharding import shard_destination

        return max(
            self.latency_by_destination.get(
                shard_destination(destination, shard_id), base
            )
            for shard_id in range(self.shards)
        )

    def _weighted_latency(self, calls):
        """Call-count-weighted mean latency across a calls dict."""
        total = sum(calls.values())
        if not total:
            return self.latency_mean
        return (
            sum(
                count * self.destination_latency(destination)
                for destination, count in calls.items()
            )
            / total
        )

    def miss_fraction(self):
        """Expected fraction of external calls that actually hit the network.

        ``1.0`` without a cache signal; otherwise ``1 - hit_ratio``,
        clamped to [0, 1].  Precedence of the hit-ratio source:

        1. explicit ``expected_hit_ratio`` (what-if override wins),
        2. an attached calibration profile's *observed* ratio,
        3. a live cache's current ``hit_ratio()``,
        4. none of the above — price every call at full latency (1.0).

        The live estimate deliberately lags reality (it is the cache's
        *observed* ratio, not the workload's future one) — good enough
        to steer sync-vs-async arbitration and wave pricing, and it
        converges as the cache warms.
        """
        ratio = self.expected_hit_ratio
        if ratio is None and self.profile is not None:
            ratio = self.profile.cache_hit_ratio
        if ratio is None and self.cache is not None:
            hit_ratio = getattr(self.cache, "hit_ratio", None)
            if callable(hit_ratio):
                ratio = hit_ratio()
        if ratio is None:
            return 1.0
        return min(1.0, max(0.0, 1.0 - float(ratio)))

    def batch_discount(self):
        """Multiplier on per-row CPU under batch-at-a-time execution.

        A batch of *B* rows pays one ``next_batch`` dispatch instead of
        *B* ``next()`` dispatches, so the dispatch share of the per-row
        cost shrinks by 1/B: ``discount = (1 - s) + s / B`` with
        ``s = DISPATCH_SHARE``.  ``B <= 1`` (or unset) yields exactly
        1.0 — the degenerate schedule prices like the seed model.
        """
        size = self.batch_size
        if size is None or size <= 1:
            return 1.0
        share = self.DISPATCH_SHARE
        return (1.0 - share) + share / float(size)

    # -- public API -------------------------------------------------------------

    def estimate(self, plan):
        """Structural :class:`PlanEstimate` for *plan*."""
        return self._walk(plan)

    def seconds(self, plan):
        """Predicted wall-clock seconds for running *plan* to completion.

        Uncalibrated, wave latency is uniform (``waves * latency_mean``
        — seed-identical); with per-destination calibration the walk's
        ``wave_seconds`` accumulator prices each wave at its own
        destination's measured latency.
        """
        estimate = self._walk(plan)
        if self.latency_by_destination:
            network = estimate.wave_seconds
        else:
            network = estimate.waves * self.latency_mean
        # A sharded tier turns every logical call into one probe per
        # shard, each paying the fixed per-call overhead.
        network += (
            (estimate.total_calls() + estimate.issued)
            * self.call_overhead
            * float(self.shards)
        )
        local = (
            estimate.local_rows * self.cpu_per_row * self.batch_discount()
            + estimate.patched_values * self.cpu_per_patch
        )
        return network + local

    def explain(self, plan):
        """Human-readable cost breakdown (one-line plan summary)."""
        estimate = self._walk(plan)
        return (
            "rows~{:.0f}  local-rows~{:.0f}  external-calls~{:.0f} ({})  "
            "waves~{:.1f}  patched-values~{:.0f}  => ~{:.3f}s".format(
                estimate.rows,
                estimate.local_rows,
                estimate.total_calls() + estimate.issued,
                ", ".join(
                    "{}:{:.0f}".format(k, v) for k, v in sorted(estimate.calls.items())
                ),
                estimate.waves,
                estimate.patched_values,
                self.seconds(plan),
            )
        )

    def annotation(self, op):
        """Short per-operator cost column for annotated explains."""
        estimate = self._walk(op)
        parts = ["rows~{:.0f}".format(estimate.rows)]
        calls = estimate.total_calls() + estimate.issued
        if calls:
            parts.append("calls~{:.0f}".format(calls))
        if estimate.waves:
            parts.append("waves~{:.1f}".format(estimate.waves))
        return " ".join(parts)

    def annotated_explain(self, plan):
        """The plan tree with a per-operator cost column.

        One renderer for both explain flavors: this delegates to
        :meth:`repro.exec.operator.Operator.explain` with
        :meth:`annotation` as the column callback, so cost-annotated
        output is the ordinary physical form plus a column rather than a
        separate format.
        """
        return plan.explain(annotate=self.annotation)

    # -- structural walk --------------------------------------------------------------

    def _walk(self, op):
        if isinstance(op, (TableScan, IndexScan)):
            table_stats = getattr(op.table, "stats", None)
            if table_stats is not None:
                rows = float(table_stats.row_count)
                column_stats = {
                    i: table_stats.column(column.name)
                    for i, column in enumerate(op.schema)
                    if table_stats.column(column.name) is not None
                }
            else:
                rows = float(op.table.row_count())
                column_stats = {}
            if isinstance(op, IndexScan):
                rows *= self._index_selectivity(op, column_stats)
            partition = getattr(op, "partition", None)
            if partition is not None:
                # One contiguous 1/total slice of the heap pages.
                rows /= float(partition[1])
            return PlanEstimate(rows=rows, local_rows=rows, column_stats=column_stats)
        if isinstance(op, Exchange):
            # The partitions cover disjoint page runs of one table, so
            # their estimates *sum* back to the sequential plan's.  The
            # model prices total work, not wall-clock overlap — a
            # deliberately conservative view that keeps Exchange-lowered
            # plans comparable to (never cheaper than) their inputs.
            parts = [self._walk(child) for child in op.children]
            merged = PlanEstimate()
            for part in parts:
                merged.rows += part.rows
                merged.local_rows += part.local_rows
                merged.calls = (
                    merged.merged_calls(part) if merged.calls else dict(part.calls)
                )
                merged.waves += part.waves
                merged.patched_values += part.patched_values
                merged.issued += part.issued
                merged.wave_seconds += part.wave_seconds
            if parts:
                merged.column_stats = dict(parts[0].column_stats)
            return merged
        if isinstance(op, RowsScan):
            rows = float(len(op.rows_data))
            return PlanEstimate(rows=rows, local_rows=rows)
        if isinstance(op, (EVScan, AEVScan)):
            # Cost is attributed at the dependent join (per-binding call).
            return PlanEstimate(rows=self._vtable_fanout(op.instance))
        if isinstance(op, Filter):
            child = self._walk(op.child)
            selectivity = predicate_selectivity(op.predicate, child.column_stats)
            probe = self._subquery_probe_rows(op.predicate, child.rows)
            return PlanEstimate(
                rows=child.rows * selectivity,
                local_rows=child.local_rows + child.rows + probe,
                calls=child.calls,
                waves=child.waves,
                patched_values=child.patched_values,
                issued=child.issued,
                wave_seconds=child.wave_seconds,
                column_stats=child.column_stats,
            )
        if isinstance(op, (Project, Limit)):
            child = self._walk(op.children[0])
            rows = child.rows
            column_stats = child.column_stats
            if isinstance(op, Limit):
                rows = min(rows, float(op.count))
            else:
                from repro.relational.expr import ColumnRef as _ColumnRef

                column_stats = {
                    out_index: child.column_stats[expr.index]
                    for out_index, expr in enumerate(op.expressions)
                    if isinstance(expr, _ColumnRef)
                    and expr.index in child.column_stats
                }
            return PlanEstimate(
                rows=rows,
                local_rows=child.local_rows + child.rows,
                calls=child.calls,
                waves=child.waves,
                patched_values=child.patched_values,
                issued=child.issued,
                wave_seconds=child.wave_seconds,
                column_stats=column_stats,
            )
        if isinstance(op, Sort):
            child = self._walk(op.child)
            sort_work = child.rows * max(1.0, math.log2(max(child.rows, 2.0)))
            return PlanEstimate(
                rows=child.rows,
                local_rows=child.local_rows + sort_work,
                calls=child.calls,
                waves=child.waves,
                patched_values=child.patched_values,
                issued=child.issued,
                wave_seconds=child.wave_seconds,
                column_stats=child.column_stats,
            )
        if isinstance(op, Distinct):
            child = self._walk(op.child)
            return PlanEstimate(
                rows=child.rows * 0.9,
                local_rows=child.local_rows + child.rows,
                calls=child.calls,
                waves=child.waves,
                patched_values=child.patched_values,
                issued=child.issued,
                wave_seconds=child.wave_seconds,
            )
        if isinstance(op, Aggregate):
            child = self._walk(op.child)
            groups = max(1.0, child.rows * 0.1) if op.group_exprs else 1.0
            if op.group_exprs:
                from repro.relational.expr import ColumnRef as _ColumnRef

                ndvs = []
                for group in op.group_exprs:
                    stats = (
                        child.column_stats.get(group.index)
                        if isinstance(group, _ColumnRef)
                        else None
                    )
                    if stats is None:
                        ndvs = None
                        break
                    ndvs.append(max(1, stats.ndv))
                if ndvs:
                    product = 1.0
                    for ndv in ndvs:
                        product *= ndv
                    groups = min(max(1.0, child.rows), float(product))
            return PlanEstimate(
                rows=groups,
                local_rows=child.local_rows + child.rows,
                calls=child.calls,
                waves=child.waves,
                patched_values=child.patched_values,
                issued=child.issued,
                wave_seconds=child.wave_seconds,
            )
        if isinstance(op, UnionAll):
            left, right = self._walk(op.left), self._walk(op.right)
            return PlanEstimate(
                rows=left.rows + right.rows,
                local_rows=left.local_rows + right.local_rows,
                calls=left.merged_calls(right),
                waves=left.waves + right.waves,
                patched_values=left.patched_values + right.patched_values,
                issued=left.issued + right.issued,
                wave_seconds=left.wave_seconds + right.wave_seconds,
            )
        if isinstance(op, CrossProduct):
            left, right = self._walk(op.left), self._walk(op.right)
            rows = left.rows * right.rows
            return PlanEstimate(
                rows=rows,
                local_rows=left.local_rows + left.rows * right.local_rows + rows,
                calls=left.merged_calls(right),
                waves=left.waves + right.waves,
                patched_values=left.patched_values + right.patched_values,
                issued=left.issued + right.issued,
                wave_seconds=left.wave_seconds + right.wave_seconds,
                column_stats=_concat_stats(left, right, len(op.left.schema)),
            )
        if isinstance(op, NestedLoopJoin):
            left, right = self._walk(op.left), self._walk(op.right)
            combined_stats = _concat_stats(left, right, len(op.left.schema))
            pairs = left.rows * right.rows
            rows = pairs * predicate_selectivity(op.predicate, combined_stats)
            if self.hash_joins and op._equijoin_split() is not None:
                # Hash upgrade: one build pass + one probe pass, no
                # quadratic pair scan (mirrors NestedLoopJoin.open).
                local = (
                    left.local_rows
                    + right.local_rows
                    + left.rows
                    + right.rows
                    + rows
                )
            else:
                local = left.local_rows + left.rows * right.local_rows + pairs
            return PlanEstimate(
                rows=rows,
                local_rows=local,
                calls=left.merged_calls(right),
                waves=left.waves + right.waves,
                patched_values=left.patched_values + right.patched_values,
                issued=left.issued + right.issued,
                wave_seconds=left.wave_seconds + right.wave_seconds,
                column_stats=combined_stats,
            )
        if isinstance(op, DependentJoin):
            return self._walk_dependent_join(op)
        if isinstance(op, ReqSync):
            return self._walk_reqsync(op)
        raise TypeError("cost model does not know operator {!r}".format(op))

    def _walk_dependent_join(self, op):
        left = self._walk(op.left)
        inner = op.right
        # Peel pass-through operators to find the external scan (if any).
        scan = inner
        while isinstance(scan, (Filter, Project, ReqSync)):
            scan = scan.children[0]
        if isinstance(scan, (EVScan, AEVScan)):
            fanout = self._vtable_fanout(scan.instance)
            destination = self._destination(scan.instance)
            # Cache-aware discount: only the expected-miss fraction of
            # the per-binding calls reaches the network (1.0 without a
            # cache signal — seed-identical estimates).
            network_calls = left.rows * self.miss_fraction()
            calls = dict(left.calls)
            calls[destination] = calls.get(destination, 0.0) + network_calls
            rows = left.rows * fanout
            waves = left.waves
            wave_seconds = left.wave_seconds
            if isinstance(scan, EVScan):
                # Sequential: every (non-cached) call is its own
                # blocking wave — a scatter wave under sharding —
                # priced at its slowest shard's latency.
                waves += network_calls
                wave_seconds += network_calls * self.scatter_latency(destination)
            return PlanEstimate(
                rows=rows,
                local_rows=left.local_rows + rows,
                calls=calls,
                waves=waves,
                patched_values=left.patched_values,
                issued=left.issued,
                wave_seconds=wave_seconds,
            )
        # Dependent join over a non-external parameterized subplan.
        right = self._walk(inner)
        rows = left.rows * max(right.rows, 1.0)
        return PlanEstimate(
            rows=rows,
            local_rows=left.local_rows + left.rows * right.local_rows + rows,
            calls=left.merged_calls(right),
            waves=left.waves + right.waves,
            patched_values=left.patched_values + right.patched_values,
            wave_seconds=left.wave_seconds + right.wave_seconds,
        )

    def _walk_reqsync(self, op):
        child = self._walk(op.child)
        # All calls below this ReqSync overlap into one wave, widened by
        # concurrency limits.  ``wave`` is the structural count;
        # ``wave_latency`` prices the same widths per destination, so a
        # calibrated slow destination dominates the wave it gates.  With
        # uniform latencies the two agree: wave_latency == wave * mean.
        wave = 0.0
        wave_latency = 0.0
        for destination, count in child.calls.items():
            limit = self.per_destination_limits.get(destination)
            width = math.ceil(count / limit) if limit else 1.0
            wave = max(wave, width)
            wave_latency = max(
                wave_latency, width * self.scatter_latency(destination)
            )
        total = sum(child.calls.values())
        if self.global_limit and total:
            widened = math.ceil(total / self.global_limit)
            wave = max(wave, widened)
            wave_latency = max(
                wave_latency, widened * self._weighted_latency(child.calls)
            )
        if child.calls:
            wave = max(wave, 1.0)
            wave_latency = max(
                wave_latency,
                max(self.scatter_latency(d) for d in child.calls),
            )
        # Each buffered tuple's placeholder values get patched once.
        return PlanEstimate(
            rows=child.rows,
            local_rows=child.local_rows + child.rows,
            calls={},  # consumed: waves account for their latency now
            waves=child.waves + wave,
            patched_values=child.patched_values + child.rows,
            issued=child.issued + total,
            wave_seconds=child.wave_seconds + wave_latency,
        )

    def _subquery_probe_rows(self, predicate, rows):
        """Local work hidden inside subquery predicates (IN / EXISTS).

        The executor materializes each subplan once, then ``IN`` probes
        it linearly per input row (half the candidate list on average).
        Plain predicates contribute zero, keeping historical Filter
        estimates bit-identical; external work inside a subplan is not
        separately priced (the decorrelation rewrite refuses non-local
        subplans anyway).
        """
        from repro.relational.expr import ExistsPredicate, InSubqueryPredicate

        total = 0.0
        stack = [predicate]
        while stack:
            expr = stack.pop()
            if isinstance(expr, InSubqueryPredicate):
                inner = self._walk(expr.subplan)
                total += inner.local_rows + rows * max(inner.rows, 1.0) * 0.5
            elif isinstance(expr, ExistsPredicate):
                total += self._walk(expr.subplan).local_rows
            elif isinstance(expr, (Conjunction, Disjunction)):
                stack.extend(expr.terms)
            elif isinstance(expr, Negation):
                stack.append(expr.term)
        return total

    def _index_selectivity(self, op, column_stats):
        """Selectivity of an IndexScan's bounds (stats-aware)."""
        stats = None
        for i, column in enumerate(op.schema):
            if column.name.lower() == op.index.column_name.lower():
                stats = column_stats.get(i)
                break
        if op.low is not None and op.low == op.high:
            if stats is not None:
                return min(1.0, stats.equality_selectivity(op.low))
            return EQUALITY_SELECTIVITY
        if stats is not None:
            fraction = 1.0
            if op.low is not None:
                low_part = stats.range_selectivity(
                    ">=" if op.include_low else ">", op.low
                )
                if low_part is not None:
                    fraction = min(fraction, low_part)
            if op.high is not None:
                high_part = stats.range_selectivity(
                    "<=" if op.include_high else "<", op.high
                )
                if high_part is not None:
                    fraction = min(fraction, high_part)
            if fraction < 1.0:
                return fraction
        return RANGE_SELECTIVITY

    # -- virtual-table characteristics ---------------------------------------------------

    def _vtable_fanout(self, instance):
        """Expected result rows per external call.

        A calibrated per-destination fan-out (mean observed result rows
        per patched call) overrides the static heuristics; a WebPages
        rank limit still caps it, since the observed mix may include
        higher-fanout vtables on the same destination.
        """
        rank_limit = getattr(instance, "rank_limit", None)
        calibrated = self.fanout_by_destination.get(self._destination(instance))
        if calibrated is not None:
            if rank_limit is not None:
                return min(float(rank_limit), max(calibrated, 0.0))
            return max(calibrated, 0.0)
        if rank_limit is not None:
            return max(1.0, rank_limit * 0.8)  # WebPages-style
        fields = instance.result_fields
        if "link_url" in fields.values():
            return 2.5  # WebLinks: average outdegree of the corpus
        return 1.0  # WebCount / WebFetch: exactly one row

    @staticmethod
    def _destination(instance):
        definition = instance.definition
        client = getattr(definition, "client", None)
        if client is not None:
            return client.name
        return "fetch"


def _concat_stats(left, right, left_width):
    combined = dict(left.column_stats)
    for index, stats in right.column_stats.items():
        combined[index + left_width] = stats
    return combined


def choose_figure7_variant(cost_model, sigs_rows, r_rows, destination=None):
    """Pick the Figure-7 placement the model predicts cheaper.

    Variant (a): one wave, patch work ~ 2 * |Sigs| * |R|.
    Variant (b): two waves, patch work ~ |Sigs| * (1 + |R|).
    Returns ``("a"|"b", predicted_a_seconds, predicted_b_seconds)``.

    With *destination* given, the wave is priced at that destination's
    (possibly calibrated) latency instead of the uniform mean — a
    measured slow source raises the cost of variant (b)'s second wave
    and can flip the choice the static constants would make.
    """
    if destination is not None:
        latency = cost_model.destination_latency(destination)
    else:
        latency = cost_model.latency_mean
    patch_a = 2.0 * sigs_rows * r_rows
    patch_b = sigs_rows * (1.0 + r_rows)
    calls_a = sigs_rows + sigs_rows * r_rows
    calls_b = calls_a
    time_a = (
        1.0 * latency
        + calls_a * cost_model.call_overhead
        + patch_a * cost_model.cpu_per_patch
    )
    time_b = (
        2.0 * latency
        + calls_b * cost_model.call_overhead
        + patch_b * cost_model.cpu_per_patch
    )
    return ("a" if time_a <= time_b else "b"), time_a, time_b
