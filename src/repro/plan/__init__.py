"""Query planning: name binding, virtual-table analysis, plan construction.

The planner mirrors the paper's prototype: left-deep nested-loop plans in
FROM-list order, with dependent joins feeding virtual-table inputs.  It
adds binding-pattern safety (a virtual table's ``SearchExp``/``T1..Tn``
must be bound by constants or by relations earlier in the join order —
the guarantee the paper notes Informix could not give) and an optional
reorderer that moves virtual tables after their binding providers.
"""

from repro.plan.binder import Binder
from repro.plan.cost import CostModel, PlanEstimate, predicate_selectivity
from repro.plan.planner import Planner, PlannerOptions

__all__ = [
    "Binder",
    "CostModel",
    "PlanEstimate",
    "Planner",
    "PlannerOptions",
    "predicate_selectivity",
]
