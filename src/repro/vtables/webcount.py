"""``WebCount(SearchExp, T1, ..., Tn, Count)`` (paper Section 3).

"For each possible Web search expression, it contains the total number of
URLs returned by a search engine for that expression."  One row per
binding, always — tuple cancellation never applies to WebCount.
"""

from repro.relational.schema import Column
from repro.relational.types import DataType
from repro.util.errors import VirtualTableError
from repro.vtables.base import ExternalCall, VTableInstance, VirtualTableDef
from repro.web.searchexpr import default_template, instantiate_template

SEARCH_EXP = "SearchExp"


def term_names(n):
    return ["T{}".format(i) for i in range(1, n + 1)]


class WebCountDef(VirtualTableDef):
    """Catalog entry for one engine's WebCount table."""

    def __init__(self, name, client):
        super().__init__(name)
        self.client = client

    def input_names(self, n):
        return [SEARCH_EXP] + term_names(n)

    def instantiate(self, qualifier, n, template=None, rank_limit=None):
        if rank_limit is not None:
            raise VirtualTableError("WebCount has no Rank column to restrict")
        if template is None:
            template = default_template(n, self.client.engine.supports_near)
        return WebCountInstance(self, qualifier, n, template)


class WebCountInstance(VTableInstance):
    def __init__(self, definition, qualifier, n, template):
        if n < 1:
            raise VirtualTableError(
                "WebCount needs at least one bound term column (T1)"
            )
        self.n = n
        self.template = template
        super().__init__(definition, qualifier, {SEARCH_EXP: template})

    def columns(self):
        cols = [Column(SEARCH_EXP, DataType.STR)]
        cols += [Column(t, DataType.STR) for t in term_names(self.n)]
        cols.append(Column("Count", DataType.INT))
        return cols

    @property
    def input_params(self):
        return [SEARCH_EXP] + term_names(self.n)

    @property
    def result_fields(self):
        return {"Count": "count"}

    def make_call(self, bindings):
        terms = [bindings[t] for t in term_names(self.n)]
        expr_text = instantiate_template(bindings[SEARCH_EXP], terms)
        client = self.definition.client
        return ExternalCall(
            key=("count", client.name, expr_text),
            destination=client.name,
            sync_fn=lambda: [{"count": client.count(expr_text)}],
            async_factory=lambda attempt=0: _count_async(client, expr_text, attempt),
        )


async def _count_async(client, expr_text, attempt=0):
    return [{"count": await client.count_async(expr_text, attempt=attempt)}]
