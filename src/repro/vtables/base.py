"""Virtual-table framework.

Definitions vs instances
------------------------

A :class:`VirtualTableDef` is what lives in the catalog under a name like
``WebCount_AV``.  Because the paper's tables have "an infinite family" of
shapes (``T1..Tn`` with query-dependent *n*), referencing one in a FROM
clause creates a :class:`VTableInstance` specialized to that query: a fixed
column list, the constant ("fixed") input bindings from the WHERE clause,
and the remaining ("dependent") inputs a dependent join must supply per
outer tuple.

External calls
--------------

``VTableInstance.make_call(bindings)`` packages one external request as an
:class:`ExternalCall` with both a blocking and a coroutine execution path.
Results are normalized to a list of field dicts, so the synchronous
:class:`~repro.vtables.evscan.EVScan`, the asynchronous ``AEVScan``, and
``ReqSync`` all share one patching vocabulary:

- ``WebCount`` → ``[{"count": 42}]`` (always exactly one row),
- ``WebPages`` → one dict per hit (possibly none — tuple cancellation).
"""

import inspect

from repro.relational.placeholder import Placeholder
from repro.relational.schema import Schema
from repro.util.errors import BindingError, VirtualTableError


class ExternalCall:
    """One request to an external source.

    ``key`` identifies the request for caching/debugging; ``destination``
    names the rate-limit bucket (the paper's per-destination counters).

    ``async_factory`` may optionally accept a 0-based *attempt* argument;
    the request pump passes the retry attempt through so fault injection
    stays a stable function of ``(destination, request, attempt)``.
    Zero-argument factories (pre-resilience call sites, tests) still
    work: the attempt is simply not forwarded.
    """

    __slots__ = ("key", "destination", "_sync_fn", "_async_factory", "_takes_attempt")

    def __init__(self, key, destination, sync_fn, async_factory):
        self.key = key
        self.destination = destination
        self._sync_fn = sync_fn
        self._async_factory = async_factory
        try:
            parameters = inspect.signature(async_factory).parameters
            self._takes_attempt = len(parameters) >= 1
        except (TypeError, ValueError):  # builtins / exotic callables
            self._takes_attempt = False

    def execute_sync(self):
        """Blocking execution; returns a list of result-field dicts."""
        return self._sync_fn()

    def execute_async(self, attempt=0):
        """Return a coroutine producing the list of result-field dicts."""
        if self._takes_attempt:
            return self._async_factory(attempt)
        return self._async_factory()

    def __repr__(self):
        return "ExternalCall({} -> {})".format(self.key, self.destination)


class VirtualTableDef:
    """A named virtual table in the catalog."""

    def __init__(self, name):
        self.name = name

    #: Ordered names of input (bindable) columns given *n* terms.
    def input_names(self, n):
        raise NotImplementedError

    def instantiate(self, qualifier, n, template=None, rank_limit=None):
        """Create the per-query instance; see subclass docs."""
        raise NotImplementedError

    #: True when Ti/SearchExp columns exist (search-style tables).
    uses_search_terms = True


class VTableInstance:
    """One FROM-clause occurrence of a virtual table.

    Subclasses define ``columns()`` (name/type pairs in row order),
    ``result_fields`` (output column name -> result dict key), and
    ``make_call``.
    """

    def __init__(self, definition, qualifier, fixed_bindings):
        self.definition = definition
        self.qualifier = qualifier
        self.fixed_bindings = dict(fixed_bindings)
        self._schema = Schema(
            [col.with_qualifier(qualifier) for col in self.columns()]
        )
        self._positions = {c.name: i for i, c in enumerate(self._schema)}

    # -- subclass interface ------------------------------------------------------

    def columns(self):
        """Unqualified :class:`~repro.relational.schema.Column` list."""
        raise NotImplementedError

    @property
    def input_params(self):
        """All bindable input column names, in order."""
        raise NotImplementedError

    @property
    def result_fields(self):
        """Mapping of output column name -> key into result dicts."""
        raise NotImplementedError

    def make_call(self, bindings):
        raise NotImplementedError

    def describe(self):
        """Short text for plan labels, e.g. ``WebCount (T2 = 'Knuth')``."""
        if not self.fixed_bindings:
            return self.qualifier
        fixed = ", ".join(
            "{} = {!r}".format(k, v) for k, v in sorted(self.fixed_bindings.items())
        )
        return "{} ({})".format(self.qualifier, fixed)

    # -- shared machinery -----------------------------------------------------------

    @property
    def schema(self):
        return self._schema

    @property
    def dependent_params(self):
        """Input names that must come from a dependent join."""
        return [p for p in self.input_params if p not in self.fixed_bindings]

    def resolve_bindings(self, join_bindings):
        """Merge fixed and join-supplied bindings; verify completeness."""
        bindings = dict(self.fixed_bindings)
        if join_bindings:
            for name, value in join_bindings.items():
                if name not in self.input_params:
                    raise BindingError(
                        "{} has no input column {!r}".format(self.qualifier, name)
                    )
                bindings[name] = value
        missing = [p for p in self.input_params if p not in bindings]
        if missing:
            raise BindingError(
                "inputs {} of {} are unbound; bind them with constants or an "
                "equi-join with an earlier table".format(missing, self.qualifier)
            )
        for name, value in bindings.items():
            if value is None or isinstance(value, Placeholder):
                raise VirtualTableError(
                    "input {} of {} bound to unusable value {!r}".format(
                        name, self.qualifier, value
                    )
                )
        return bindings

    def complete_rows(self, bindings, result_rows):
        """Build fully-resolved output rows from external results."""
        prefix = self._echo_prefix(bindings)
        rows = []
        for result in result_rows:
            row = list(prefix)
            for column, field in self.result_fields.items():
                row[self._positions[column]] = result[field]
            rows.append(tuple(row))
        return rows

    def placeholder_row(self, bindings, call_id):
        """The optimistic single row AEVScan returns before the call lands."""
        row = list(self._echo_prefix(bindings))
        for column, field in self.result_fields.items():
            row[self._positions[column]] = Placeholder(call_id, field)
        return tuple(row)

    def _echo_prefix(self, bindings):
        """Row skeleton with input columns echoed and outputs None."""
        row = [None] * len(self._schema)
        for name, value in bindings.items():
            row[self._positions[name]] = value
        return row
