"""``WebFetch`` and ``WebLinks``: page retrieval as virtual tables.

Paper Section 4.2 sketches asynchronous iteration powering a Web crawler.
These tables make that concrete:

- ``WebFetch(Url, Status, Bytes, Title, Date)`` — exactly one row per
  URL (missing pages get status 404).
- ``WebLinks(Url, LinkUrl, LinkRank)`` — one row per outgoing link of the
  fetched page: the crawler's frontier expansion, and a second natural
  source of tuple cancellation/proliferation (0 or many links).

Unlike the search tables, their single input column is ``Url`` — there is
no SearchExp/Ti machinery — so they also exercise the framework's
generality beyond search engines.
"""

from repro.relational.schema import Column
from repro.relational.types import DataType
from repro.util.errors import VirtualTableError
from repro.vtables.base import ExternalCall, VTableInstance, VirtualTableDef

URL_PARAM = "Url"


class WebFetchDef(VirtualTableDef):
    uses_search_terms = False

    def __init__(self, name, fetch_service):
        super().__init__(name)
        self.fetch_service = fetch_service

    def input_names(self, n):
        return [URL_PARAM]

    def instantiate(self, qualifier, n, template=None, rank_limit=None):
        if template is not None or rank_limit is not None:
            raise VirtualTableError("WebFetch takes only a Url binding")
        return WebFetchInstance(self, qualifier)


class WebFetchInstance(VTableInstance):
    def __init__(self, definition, qualifier):
        super().__init__(definition, qualifier, {})

    def columns(self):
        return [
            Column(URL_PARAM, DataType.STR),
            Column("Status", DataType.INT),
            Column("Bytes", DataType.INT),
            Column("Title", DataType.STR),
            Column("Date", DataType.DATE),
        ]

    @property
    def input_params(self):
        return [URL_PARAM]

    @property
    def result_fields(self):
        return {"Status": "status", "Bytes": "bytes", "Title": "title", "Date": "date"}

    def make_call(self, bindings):
        url = bindings[URL_PARAM]
        service = self.definition.fetch_service
        return ExternalCall(
            key=("fetch", url),
            destination="fetch",
            sync_fn=lambda: [_fetch_row(service.fetch(url))],
            async_factory=lambda: _fetch_async(service, url),
        )


def _fetch_row(result):
    return {
        "status": result.status,
        "bytes": result.length,
        "title": result.title,
        "date": result.date,
    }


async def _fetch_async(service, url):
    return [_fetch_row(await service.fetch_async(url))]


class WebLinksDef(VirtualTableDef):
    uses_search_terms = False

    def __init__(self, name, fetch_service):
        super().__init__(name)
        self.fetch_service = fetch_service

    def input_names(self, n):
        return [URL_PARAM]

    def instantiate(self, qualifier, n, template=None, rank_limit=None):
        if template is not None or rank_limit is not None:
            raise VirtualTableError("WebLinks takes only a Url binding")
        return WebLinksInstance(self, qualifier)


class WebLinksInstance(VTableInstance):
    def __init__(self, definition, qualifier):
        super().__init__(definition, qualifier, {})

    def columns(self):
        return [
            Column(URL_PARAM, DataType.STR),
            Column("LinkUrl", DataType.STR),
            Column("LinkRank", DataType.INT),
        ]

    @property
    def input_params(self):
        return [URL_PARAM]

    @property
    def result_fields(self):
        return {"LinkUrl": "link_url", "LinkRank": "link_rank"}

    def make_call(self, bindings):
        url = bindings[URL_PARAM]
        service = self.definition.fetch_service
        return ExternalCall(
            key=("links", url),
            destination="fetch",
            sync_fn=lambda: _link_rows(service.fetch(url)),
            async_factory=lambda: _links_async(service, url),
        )


def _link_rows(result):
    return [
        {"link_url": link, "link_rank": rank}
        for rank, link in enumerate(result.links, start=1)
    ]


async def _links_async(service, url):
    return _link_rows(await service.fetch_async(url))
