"""``WebPages(SearchExp, T1, ..., Tn, URL, Rank, Date)`` (paper Section 3).

Rows are the engine's ranked hits for the instantiated search expression.
Retrieving *all* URLs would be "extremely expensive", so every instance
carries a rank limit; when the query has no ``Rank`` restriction the
paper's default selection predicate ``Rank < 20`` applies.
"""

from repro.relational.schema import Column
from repro.relational.types import DataType
from repro.util.errors import VirtualTableError
from repro.vtables.base import ExternalCall, VTableInstance, VirtualTableDef
from repro.vtables.webcount import SEARCH_EXP, term_names
from repro.web.searchexpr import default_template, instantiate_template

#: The paper's default "Rank < 20" guard, expressed as a max row count.
DEFAULT_MAX_RANK = 19


class WebPagesDef(VirtualTableDef):
    """Catalog entry for one engine's WebPages table."""

    def __init__(self, name, client):
        super().__init__(name)
        self.client = client

    def input_names(self, n):
        return [SEARCH_EXP] + term_names(n)

    def instantiate(self, qualifier, n, template=None, rank_limit=None):
        if template is None:
            template = default_template(n, self.client.engine.supports_near)
        if rank_limit is None:
            rank_limit = DEFAULT_MAX_RANK
        return WebPagesInstance(self, qualifier, n, template, rank_limit)


class WebPagesInstance(VTableInstance):
    def __init__(self, definition, qualifier, n, template, rank_limit):
        if n < 1:
            raise VirtualTableError(
                "WebPages needs at least one bound term column (T1)"
            )
        if rank_limit < 0:
            raise VirtualTableError("rank limit cannot be negative")
        self.n = n
        self.template = template
        self.rank_limit = rank_limit
        super().__init__(definition, qualifier, {SEARCH_EXP: template})

    def columns(self):
        cols = [Column(SEARCH_EXP, DataType.STR)]
        cols += [Column(t, DataType.STR) for t in term_names(self.n)]
        cols += [
            Column("URL", DataType.STR),
            Column("Rank", DataType.INT),
            Column("Date", DataType.DATE),
        ]
        return cols

    @property
    def input_params(self):
        return [SEARCH_EXP] + term_names(self.n)

    @property
    def result_fields(self):
        return {"URL": "url", "Rank": "rank", "Date": "date"}

    def describe(self):
        return "{} (Rank <= {})".format(self.qualifier, self.rank_limit)

    def make_call(self, bindings):
        terms = [bindings[t] for t in term_names(self.n)]
        expr_text = instantiate_template(bindings[SEARCH_EXP], terms)
        client = self.definition.client
        limit = self.rank_limit
        return ExternalCall(
            key=("search", client.name, expr_text, limit),
            destination=client.name,
            sync_fn=lambda: _hit_rows(client.search(expr_text, limit)),
            async_factory=lambda attempt=0: _search_async(
                client, expr_text, limit, attempt
            ),
        )


def _hit_rows(hits):
    return [{"url": h.url, "rank": h.rank, "date": h.date} for h in hits]


async def _search_async(client, expr_text, limit, attempt=0):
    return _hit_rows(await client.search_async(expr_text, limit, attempt=attempt))
