"""Virtual tables (paper Section 3).

A virtual table "looks like a table to the query processor but returns
dynamically-generated tuples".  This package provides:

- :class:`~repro.vtables.base.VirtualTableDef` /
  :class:`~repro.vtables.base.VTableInstance` — the definition/per-query
  instance split (the paper's tables are "an infinite family of infinitely
  large virtual tables": the column count is fixed per *query*, not per
  table).
- :class:`~repro.vtables.base.ExternalCall` — one external request with
  synchronous and asynchronous execution paths.
- :mod:`repro.vtables.webcount` / :mod:`repro.vtables.webpages` — the
  paper's two tables over a search engine.
- :mod:`repro.vtables.webfetch` — ``WebFetch``/``WebLinks`` over the page
  store, for the Section 4.2 crawler scenario.
- :class:`~repro.vtables.evscan.EVScan` — the blocking external
  virtual-table scan (the sequential baseline).
"""

from repro.vtables.base import ExternalCall, VTableInstance, VirtualTableDef
from repro.vtables.evscan import EVScan
from repro.vtables.webcount import WebCountDef
from repro.vtables.webfetch import WebFetchDef, WebLinksDef
from repro.vtables.webpages import DEFAULT_MAX_RANK, WebPagesDef

__all__ = [
    "DEFAULT_MAX_RANK",
    "EVScan",
    "ExternalCall",
    "VTableInstance",
    "VirtualTableDef",
    "WebCountDef",
    "WebFetchDef",
    "WebLinksDef",
    "WebPagesDef",
]
