"""EVScan: the blocking external virtual-table scan.

This is the paper's Figure-2 operator: each ``open(bindings)`` issues one
external call *synchronously* — the query processor idles for the whole
round trip — then iterates the materialized result rows.  Asynchronous
iteration replaces it with :class:`~repro.asynciter.aevscan.AEVScan`.

``on_error`` mirrors the :class:`~repro.asynciter.reqsync.ReqSync`
graceful-degradation policy so the sequential baseline degrades exactly
like the asynchronous plan under the same fault schedule: ``"raise"``
propagates the failure (default), ``"drop"`` behaves like a zero-row
result, and ``"null"`` yields one row whose external attributes are NULL.
"""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError, ReproError


class EVScan(Operator):
    """Sequential scan of one virtual-table instance."""

    def __init__(self, instance, on_error="raise"):
        if on_error not in ("raise", "drop", "null"):
            raise ExecutionError(
                "unknown on_error policy {!r}; expected raise/drop/null".format(
                    on_error
                )
            )
        self.instance = instance
        self.on_error = on_error
        self.schema = instance.schema
        self.children = ()
        self._rows = None
        self._position = 0
        self.calls_issued = 0
        self.call_errors = 0

    def open(self, bindings=None):
        resolved = self.instance.resolve_bindings(bindings)
        call = self.instance.make_call(resolved)
        self.calls_issued += 1
        try:
            result_rows = call.execute_sync()
        except Exception as exc:  # noqa: BLE001 - degraded per policy below
            if self.on_error == "raise":
                if isinstance(exc, ReproError):
                    raise
                raise ExecutionError(
                    "external call to {!r} failed: {}".format(call.destination, exc)
                ) from exc
            self.call_errors += 1
            if self.on_error == "drop":
                result_rows = []
            else:  # null
                result_rows = [
                    {field: None for field in self.instance.result_fields.values()}
                ]
        self._rows = self.instance.complete_rows(resolved, result_rows)
        self._position = 0

    def next(self):
        if self._rows is None:
            raise ExecutionError("EVScan.next() before open()")
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def close(self):
        self._rows = None
        self._position = 0

    def label(self):
        suffix = (
            "" if self.on_error == "raise" else " [on_error={}]".format(self.on_error)
        )
        return "EVScan: {}{}".format(self.instance.describe(), suffix)
