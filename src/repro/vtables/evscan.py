"""EVScan: the blocking external virtual-table scan.

This is the paper's Figure-2 operator: each ``open(bindings)`` issues one
external call *synchronously* — the query processor idles for the whole
round trip — then iterates the materialized result rows.  Asynchronous
iteration replaces it with :class:`~repro.asynciter.aevscan.AEVScan`.

``on_error`` mirrors the :class:`~repro.asynciter.reqsync.ReqSync`
graceful-degradation policy so the sequential baseline degrades exactly
like the asynchronous plan under the same fault schedule: ``"raise"``
propagates the failure (default), ``"drop"`` behaves like a zero-row
result, and ``"null"`` yields one row whose external attributes are NULL.
"""

from repro.exec.operator import Operator
from repro.obs.trace import (
    CALL_COMPLETE,
    CALL_FAIL,
    CALL_ISSUE,
    CALL_REGISTER,
    SYNC_DEGRADE,
)
from repro.util.errors import (
    ExecutionError,
    QueryDeadlineExceeded,
    ReproError,
)
from repro.util.timing import resolve_clock


class EVScan(Operator):
    """Sequential scan of one virtual-table instance.

    Observability: the engine may attach a tracer (plus metrics/query id)
    via :meth:`attach_observability`.  Each ``open`` then emits the same
    *logical* lifecycle the pump emits for the asynchronous path —
    ``call.register → call.issue → call.complete|call.fail`` with
    ``mode="sync"`` — so a sync and an async run of one workload produce
    identical event multisets, just with different schedules.  Sync call
    ids are negative (allocated by the tracer) and can never collide
    with pump call ids.
    """

    def __init__(self, instance, on_error="raise", deadline=None):
        if on_error not in ("raise", "drop", "null"):
            raise ExecutionError(
                "unknown on_error policy {!r}; expected raise/drop/null".format(
                    on_error
                )
            )
        self.instance = instance
        self.on_error = on_error
        #: Per-query budget (duck-typed Deadline): the sequential path's
        #: checkpoint is before each blocking round trip.
        self.deadline = deadline
        self.schema = instance.schema
        self.children = ()
        self._rows = None
        self._position = 0
        self.calls_issued = 0
        self.call_errors = 0
        # Observability handles (attached by the engine; all optional).
        self.tracer = None
        self.metrics = None
        self.query_id = None
        self.clock = None

    def attach_observability(self, tracer=None, metrics=None, query_id=None, clock=None):
        self.tracer = tracer
        self.metrics = metrics
        self.query_id = query_id
        self.clock = clock

    def open(self, bindings=None):
        resolved = self.instance.resolve_bindings(bindings)
        call = self.instance.make_call(resolved)
        if self.deadline is not None and self.deadline.expired:
            # Fail fast before the blocking round trip; the deadline
            # cannot interrupt execute_sync() mid-call, so this is the
            # sequential path's only checkpoint.
            raise QueryDeadlineExceeded(
                "deadline expired before synchronous call to {!r}".format(
                    call.destination
                ),
                deadline=self.deadline,
            )
        self.calls_issued += 1
        tracer = self.tracer
        call_id = None
        clock = None
        issued_at = None
        if tracer is not None:
            clock = resolve_clock(self.clock if self.clock is not None else tracer.clock)
            call_id = tracer.next_sync_call_id()
            issued_at = clock.now()
            # The sequential path has no queue: registration and issue
            # coincide (the query processor blocks for the round trip).
            tracer.emit(
                CALL_REGISTER,
                call_id=call_id,
                query_id=self.query_id,
                destination=call.destination,
                ts=issued_at,
                mode="sync",
                key=str(call.key) if call.key is not None else None,
            )
            tracer.emit(
                CALL_ISSUE,
                call_id=call_id,
                query_id=self.query_id,
                destination=call.destination,
                ts=issued_at,
                in_flight=1,
            )
        try:
            result_rows = call.execute_sync()
        except Exception as exc:  # noqa: BLE001 - degraded per policy below
            self._observe(call, call_id, issued_at, CALL_FAIL, error=type(exc).__name__)
            if self.on_error == "raise":
                if isinstance(exc, ReproError):
                    raise
                raise ExecutionError(
                    "external call to {!r} failed: {}".format(call.destination, exc)
                ) from exc
            self.call_errors += 1
            if tracer is not None:
                tracer.emit(
                    SYNC_DEGRADE,
                    call_id=call_id,
                    query_id=self.query_id,
                    destination=call.destination,
                    policy=self.on_error,
                )
            if self.on_error == "drop":
                result_rows = []
            else:  # null
                result_rows = [
                    {field: None for field in self.instance.result_fields.values()}
                ]
        else:
            self._observe(
                call, call_id, issued_at, CALL_COMPLETE, rows=len(result_rows)
            )
        self._rows = self.instance.complete_rows(resolved, result_rows)
        self._position = 0

    def _observe(self, call, call_id, issued_at, event, **args):
        """Settlement event + service-latency observation (sync path)."""
        tracer = self.tracer
        if tracer is None:
            return
        clock = resolve_clock(self.clock if self.clock is not None else tracer.clock)
        settled_at = clock.now()
        tracer.emit(
            event,
            call_id=call_id,
            query_id=self.query_id,
            destination=call.destination,
            ts=settled_at,
            attempts=1,
        )
        if self.metrics is not None and issued_at is not None:
            elapsed = settled_at - issued_at
            for kind in ("service", "e2e"):
                self.metrics.observe(
                    "request.{}_seconds".format(kind),
                    elapsed,
                    destination=call.destination,
                )

    def next(self):
        if self._rows is None:
            raise ExecutionError("EVScan.next() before open()")
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def next_batch(self, max_rows=None):
        if self._rows is None:
            raise ExecutionError("EVScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        start = self._position
        if start >= len(self._rows):
            return None
        rows = self._rows[start : start + limit]
        self._position = start + len(rows)
        return self.make_batch(rows)

    def close(self):
        self._rows = None
        self._position = 0

    def label(self):
        suffix = (
            "" if self.on_error == "raise" else " [on_error={}]".format(self.on_error)
        )
        return "EVScan: {}{}".format(self.instance.describe(), suffix)
