"""EVScan: the blocking external virtual-table scan.

This is the paper's Figure-2 operator: each ``open(bindings)`` issues one
external call *synchronously* — the query processor idles for the whole
round trip — then iterates the materialized result rows.  Asynchronous
iteration replaces it with :class:`~repro.asynciter.aevscan.AEVScan`.
"""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError


class EVScan(Operator):
    """Sequential scan of one virtual-table instance."""

    def __init__(self, instance):
        self.instance = instance
        self.schema = instance.schema
        self.children = ()
        self._rows = None
        self._position = 0
        self.calls_issued = 0

    def open(self, bindings=None):
        resolved = self.instance.resolve_bindings(bindings)
        call = self.instance.make_call(resolved)
        self.calls_issued += 1
        result_rows = call.execute_sync()
        self._rows = self.instance.complete_rows(resolved, result_rows)
        self._position = 0

    def next(self):
        if self._rows is None:
            raise ExecutionError("EVScan.next() before open()")
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def close(self):
        self._rows = None
        self._position = 0

    def label(self):
        return "EVScan: {}".format(self.instance.describe())
