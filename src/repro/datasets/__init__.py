"""Embedded datasets used by the paper's examples and evaluation.

- :mod:`repro.datasets.states` — the 50 U.S. states with 1998 Census
  population estimates (in thousands, matching the paper's Query 2 ratios)
  and state capitals.
- :mod:`repro.datasets.sigs` — the 37 ACM Special Interest Groups of 1999.
- :mod:`repro.datasets.csfields` — computer-science fields (Section 4.5,
  Example 3).
- :mod:`repro.datasets.movies` — a movie relation for the DSQ scenario.
- :mod:`repro.datasets.loaders` — helpers that create the corresponding
  stored tables in a :class:`~repro.storage.database.Database`.
"""

from repro.datasets.csfields import CS_FIELDS
from repro.datasets.loaders import (
    load_all,
    load_csfields_table,
    load_movies_table,
    load_sigs_table,
    load_states_table,
)
from repro.datasets.movies import MOVIES
from repro.datasets.sigs import SIGS
from repro.datasets.states import STATES, StateRecord

__all__ = [
    "CS_FIELDS",
    "MOVIES",
    "SIGS",
    "STATES",
    "StateRecord",
    "load_all",
    "load_csfields_table",
    "load_movies_table",
    "load_sigs_table",
    "load_states_table",
]
