"""Computer-science fields (paper Section 4.5, Example 3).

``web_weight`` is the page-count calibration target; ``sig_affinity`` maps a
field to the SIG whose pages it tends to share, which is what lets the
Example-3 query (URLs in the top 5 for both a Sig *and* a CS field) return
a small non-empty answer.
"""

from collections import namedtuple

FieldRecord = namedtuple("FieldRecord", ["name", "web_weight", "sig_affinity", "affinity_weight"])

CS_FIELDS = [
    FieldRecord("databases", 90, "SIGMOD", 12),
    FieldRecord("operating systems", 75, "SIGOPS", 10),
    FieldRecord("artificial intelligence", 85, "SIGART", 8),
    FieldRecord("networking", 70, "SIGCOMM", 10),
    FieldRecord("graphics", 80, "SIGGRAPH", 12),
    FieldRecord("algorithms", 65, "SIGACT", 10),
    FieldRecord("compilers", 45, "SIGPLAN", 10),
    FieldRecord("architecture", 55, "SIGARCH", 8),
    FieldRecord("security", 50, "SIGSAC", 6),
    FieldRecord("robotics", 40, None, 0),
    FieldRecord("machine learning", 60, "SIGART", 4),
    FieldRecord("human computer interaction", 35, "SIGCHI", 8),
]

CS_FIELD_NAMES = [f.name for f in CS_FIELDS]
