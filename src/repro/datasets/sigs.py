"""The 37 ACM Special Interest Groups, circa 1999 (paper Section 4.1).

``web_weight`` is the corpus calibration target: the number of synthetic
pages mentioning the SIG (used directly, unscaled).  Every SIG gets at least
a handful of pages because the paper notes "all Sigs are mentioned on at
least 3 Web pages", which makes its Figure-4 example produce 111 tuples.

``knuth_weight`` is the number of pages mentioning the SIG *near* the
keyword "Knuth"; the paper's footnote 3 gives the resulting order —
SIGACT, SIGPLAN, SIGGRAPH, SIGMOD, SIGCOMM, SIGSAM, everything else 0 —
which these targets reproduce exactly.
"""

from collections import namedtuple

SigRecord = namedtuple("SigRecord", ["name", "web_weight", "knuth_weight"])

SIGS = [
    SigRecord("SIGACT", 35, 30),
    SigRecord("SIGAda", 18, 0),
    SigRecord("SIGAPL", 12, 0),
    SigRecord("SIGAPP", 15, 0),
    SigRecord("SIGARCH", 40, 0),
    SigRecord("SIGART", 30, 0),
    SigRecord("SIGBIO", 10, 0),
    SigRecord("SIGCAPH", 6, 0),
    SigRecord("SIGCAS", 8, 0),
    SigRecord("SIGCHI", 70, 0),
    SigRecord("SIGCOMM", 50, 8),
    SigRecord("SIGCPR", 7, 0),
    SigRecord("SIGCSE", 33, 0),
    SigRecord("SIGCUE", 6, 0),
    SigRecord("SIGDA", 14, 0),
    SigRecord("SIGDOC", 11, 0),
    SigRecord("SIGecom", 9, 0),
    SigRecord("SIGFORTH", 5, 0),
    SigRecord("SIGGRAPH", 80, 18),
    SigRecord("SIGGROUP", 10, 0),
    SigRecord("SIGIR", 38, 0),
    SigRecord("SIGKDD", 22, 0),
    SigRecord("SIGMETRICS", 19, 0),
    SigRecord("SIGMICRO", 9, 0),
    SigRecord("SIGMIS", 8, 0),
    SigRecord("SIGMM", 13, 0),
    SigRecord("SIGMOBILE", 16, 0),
    SigRecord("SIGMOD", 60, 14),
    SigRecord("SIGNUM", 6, 0),
    SigRecord("SIGOPS", 45, 0),
    SigRecord("SIGPLAN", 55, 24),
    SigRecord("SIGSAC", 12, 0),
    SigRecord("SIGSAM", 9, 3),
    SigRecord("SIGSIM", 8, 0),
    SigRecord("SIGSOFT", 42, 0),
    SigRecord("SIGUCCS", 7, 0),
    SigRecord("SIGWEB", 11, 0),
]

SIG_NAMES = [s.name for s in SIGS]

# The paper's footnote-3 ranking for "Sigs near Knuth".
KNUTH_ORDER = ["SIGACT", "SIGPLAN", "SIGGRAPH", "SIGMOD", "SIGCOMM", "SIGSAM"]

assert len(SIGS) == 37, "the paper's Sigs table has 37 tuples"
