"""The 50 U.S. states: 1998 population estimates and capitals.

Populations are in **thousands**, following the U.S. Census Bureau's
st-98-1 series the paper cites [Uni98]; with this unit, the paper's Query 2
("Count/Population") produces ratios on the same scale as its published
results (Alaska 1149, Washington 733, ...).

``web_weight`` and ``capital_web_weight`` are the *calibration targets* for
the synthetic Web corpus: relative mention frequencies anchored to every
count the paper publishes (Q1 top-5 states, Q2 per-capita top-5 implied
counts, Q4's six capital/state pairs) and extrapolated plausibly for the
rest.  The corpus generator divides them by its scale factor to get document
counts, so the *orderings and ratios* of the paper's results are preserved
even though absolute counts are corpus-sized rather than Web-sized.
"""

from collections import namedtuple

StateRecord = namedtuple(
    "StateRecord",
    ["name", "population", "capital", "web_weight", "capital_web_weight"],
)

# Columns: name, 1998 population (thousands), capital,
#          state web-count target, capital web-count target.
STATES = [
    StateRecord("Alabama", 4352, "Montgomery", 761600, 340000),
    StateRecord("Alaska", 614, "Juneau", 705546, 60000),
    StateRecord("Arizona", 4669, "Phoenix", 1073870, 820000),
    StateRecord("Arkansas", 2538, "Little Rock", 482220, 260000),
    StateRecord("California", 32667, "Sacramento", 4995016, 550000),
    StateRecord("Colorado", 3971, "Denver", 1350140, 900000),
    StateRecord("Connecticut", 3274, "Hartford", 605690, 380000),
    StateRecord("Delaware", 744, "Dover", 513360, 180000),
    StateRecord("Florida", 14916, "Tallahassee", 1566180, 230000),
    StateRecord("Georgia", 7642, "Atlanta", 958280, 1053868),
    StateRecord("Hawaii", 1193, "Honolulu", 757555, 420000),
    StateRecord("Idaho", 1229, "Boise", 307250, 200000),
    StateRecord("Illinois", 12045, "Springfield", 1349040, 520000),
    StateRecord("Indiana", 5899, "Indianapolis", 884850, 500000),
    StateRecord("Iowa", 2862, "Des Moines", 558090, 240000),
    StateRecord("Kansas", 2629, "Topeka", 525800, 130000),
    StateRecord("Kentucky", 3936, "Frankfort", 708480, 120000),
    StateRecord("Louisiana", 4369, "Baton Rouge", 917490, 220000),
    StateRecord("Maine", 1244, "Augusta", 385640, 310000),
    StateRecord("Maryland", 5135, "Annapolis", 975650, 210000),
    StateRecord("Massachusetts", 6147, "Boston", 1006946, 1409828),
    StateRecord("Michigan", 9817, "Lansing", 1621754, 160000),
    StateRecord("Minnesota", 4725, "Saint Paul", 945000, 300000),
    StateRecord("Mississippi", 2752, "Jackson", 662145, 1120655),
    StateRecord("Missouri", 5439, "Jefferson City", 870240, 100000),
    StateRecord("Montana", 880, "Helena", 396000, 140000),
    StateRecord("Nebraska", 1663, "Lincoln", 385991, 669059),
    StateRecord("Nevada", 1747, "Carson City", 733740, 110000),
    StateRecord("New Hampshire", 1185, "Concord", 319950, 290000),
    StateRecord("New Jersey", 8115, "Trenton", 1054950, 200000),
    StateRecord("New Mexico", 1737, "Santa Fe", 503730, 320000),
    StateRecord("New York", 18175, "Albany", 3764513, 480000),
    StateRecord("North Carolina", 7546, "Raleigh", 1056440, 280000),
    StateRecord("North Dakota", 638, "Bismarck", 223300, 90000),
    StateRecord("Ohio", 11209, "Columbus", 1289035, 800000),
    StateRecord("Oklahoma", 3347, "Oklahoma City", 635930, 380000),
    StateRecord("Oregon", 3282, "Salem", 853320, 400000),
    StateRecord("Pennsylvania", 12001, "Harrisburg", 1320110, 150000),
    StateRecord("Rhode Island", 988, "Providence", 296400, 280000),
    StateRecord("South Carolina", 3836, "Columbia", 540618, 1668270),
    StateRecord("South Dakota", 738, "Pierre", 283821, 663310),
    StateRecord("Tennessee", 5431, "Nashville", 923270, 700000),
    StateRecord("Texas", 19760, "Austin", 2724285, 610000),
    StateRecord("Utah", 2100, "Salt Lake City", 588000, 350000),
    StateRecord("Vermont", 591, "Montpelier", 283680, 70000),
    StateRecord("Virginia", 6791, "Richmond", 1358200, 600000),
    StateRecord("Washington", 5689, "Olympia", 4167056, 190000),
    StateRecord("West Virginia", 1811, "Charleston", 380310, 250000),
    StateRecord("Wisconsin", 5224, "Madison", 861960, 650000),
    StateRecord("Wyoming", 481, "Cheyenne", 290043, 90000),
]

STATE_NAMES = [s.name for s in STATES]

# The six capitals the paper's Query 4 reports as beating their states
# (the *complete* result set in the paper).
CAPITALS_BEATING_STATES = {
    "Atlanta", "Lincoln", "Boston", "Jackson", "Pierre", "Columbia",
}


def state_by_name(name):
    for record in STATES:
        if record.name.lower() == name.lower():
            return record
    raise KeyError(name)
