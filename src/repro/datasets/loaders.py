"""Create the paper's stored tables inside a Database."""

from repro.datasets.csfields import CS_FIELDS
from repro.datasets.movies import MOVIES
from repro.datasets.sigs import SIGS
from repro.datasets.states import STATES
from repro.relational.types import DataType


def load_states_table(db, name="States"):
    """``States(Name, Population, Capital)`` — population in thousands."""
    return db.create_table_from_rows(
        name,
        [("Name", DataType.STR), ("Population", DataType.INT), ("Capital", DataType.STR)],
        [(s.name, s.population, s.capital) for s in STATES],
    )


def load_sigs_table(db, name="Sigs"):
    """``Sigs(Name)`` — the 37 ACM Special Interest Groups."""
    return db.create_table_from_rows(
        name, [("Name", DataType.STR)], [(s.name,) for s in SIGS]
    )


def load_csfields_table(db, name="CSFields"):
    """``CSFields(Name)`` — computer-science fields."""
    return db.create_table_from_rows(
        name, [("Name", DataType.STR)], [(f.name,) for f in CS_FIELDS]
    )


def load_movies_table(db, name="Movies"):
    """``Movies(Title)`` — the DSQ movie relation."""
    return db.create_table_from_rows(
        name, [("Title", DataType.STR)], [(m.title,) for m in MOVIES]
    )


def load_all(db):
    """Load every dataset table; returns the database for chaining."""
    load_states_table(db)
    load_sigs_table(db)
    load_csfields_table(db)
    load_movies_table(db)
    return db
