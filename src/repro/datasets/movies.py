"""A movie relation for the DSQ scenario (paper Section 1).

The paper's DSQ example correlates the phrase "scuba diving" with states
and movies, and hopes to surface a state/movie/phrase triple ("an
underwater thriller filmed in Florida").  ``scuba_weight`` calibrates how
many synthetic pages mention the movie near "scuba diving";
``state_affinity`` is the filming state used for triple pages.
"""

from collections import namedtuple

MovieRecord = namedtuple(
    "MovieRecord", ["title", "web_weight", "scuba_weight", "state_affinity"]
)

MOVIES = [
    MovieRecord("Deep Blue Reef", 45, 25, "Florida"),  # the underwater thriller
    MovieRecord("The Abyss", 70, 20, "California"),
    MovieRecord("Jaws", 95, 15, "Massachusetts"),
    MovieRecord("Titanic", 120, 8, "California"),
    MovieRecord("Waterworld", 50, 6, "Hawaii"),
    MovieRecord("Fargo", 60, 0, "North Dakota"),
    MovieRecord("Twister", 55, 0, "Oklahoma"),
    MovieRecord("Casablanca", 80, 0, None),
    MovieRecord("Vertigo", 45, 0, "California"),
    MovieRecord("Psycho", 50, 0, "California"),
    MovieRecord("Rocky", 65, 0, "Pennsylvania"),
    MovieRecord("Goodfellas", 40, 0, "New York"),
    MovieRecord("Heat", 35, 0, "California"),
    MovieRecord("Seven", 30, 0, None),
    MovieRecord("Alien", 75, 0, None),
    MovieRecord("Aliens", 55, 0, None),
    MovieRecord("The Shining", 45, 0, "Colorado"),
    MovieRecord("Dances With Wolves", 35, 0, "South Dakota"),
    MovieRecord("Forrest Gump", 70, 0, "Georgia"),
    MovieRecord("The Firm", 30, 0, "Tennessee"),
]

MOVIE_TITLES = [m.title for m in MOVIES]
