"""repro.serve: the multi-tenant query service layer (DESIGN.md §12).

An optional layer *above* :class:`~repro.wsq.engine.WsqEngine`: nothing
in the engine or asynciter stack imports this package (deadlines are
duck-typed on the way down), so embedding the engine without a service
costs nothing.
"""

from repro.serve.admission import (
    ADMITTED,
    DEFAULT_TENANT,
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHED_SHUTDOWN,
    AdmissionController,
    TenantPolicy,
)
from repro.serve.deadline import Deadline
from repro.serve.scheduler import FairScheduler
from repro.serve.session import QueryHandle, QueryService, Session
from repro.serve.slo import render_slo_report, slo_report
from repro.util.errors import AdmissionRejected, QueryDeadlineExceeded

__all__ = [
    "ADMITTED",
    "DEFAULT_TENANT",
    "SHED_DEADLINE",
    "SHED_QUEUE_FULL",
    "SHED_SHUTDOWN",
    "AdmissionController",
    "AdmissionRejected",
    "Deadline",
    "FairScheduler",
    "QueryDeadlineExceeded",
    "QueryHandle",
    "QueryService",
    "Session",
    "TenantPolicy",
    "render_slo_report",
    "slo_report",
]
