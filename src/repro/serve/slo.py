"""Per-tenant SLO accounting over the shared metrics registry.

A :class:`~repro.serve.admission.TenantPolicy` with ``slo_seconds`` set
declares a latency objective; this module is the bookkeeping the
service runs at settlement time and the report the ``.slo`` CLI view
renders.  Everything lives in the engine's
:class:`~repro.obs.metrics.MetricsRegistry` under the validated naming
scheme, so the SLO state survives in any metrics export:

- ``serve.slo.met{tenant=}`` / ``serve.slo.violated{tenant=}`` —
  counters over settled queries;
- ``serve.slo.burn{tenant=}`` — the error-budget burn gauge:
  ``violated_fraction / (1 - slo_target)``.  1.0 means the budget is
  being consumed exactly as provisioned; above 1.0 the tenant is
  burning budget faster than its target allows.

Counting rules (what charges the budget):

- a query that **completes** within the objective is *met*;
- a completion past the objective, an execution **failure**, a
  **deadline expiry**, and a **shed** all count as *violated* — from
  the client's perspective each is a request the service failed to
  answer in time;
- a **client-cancelled** query is excluded entirely: the caller walked
  away, so neither side of the ratio should move.
"""

from repro.obs.trace import SERVE_SLO_VIOLATION

#: Metric names (one place, so exports and tests agree).
SLO_MET = "serve.slo.met"
SLO_VIOLATED = "serve.slo.violated"
SLO_BURN = "serve.slo.burn"


def record_settlement(metrics, tracer, policy, tenant, outcome, e2e_seconds,
                      completed):
    """Charge one settled query against *tenant*'s SLO (if it has one).

    *outcome* is the service's terminal status string, *e2e_seconds* the
    submit→settle latency, *completed* whether rows were delivered.
    Returns ``True``/``False`` for met/violated, ``None`` when the
    tenant has no SLO configured.
    """
    if policy is None or policy.slo_seconds is None:
        return None
    met = bool(completed) and e2e_seconds <= policy.slo_seconds
    metrics.inc(SLO_MET if met else SLO_VIOLATED, tenant=tenant)
    _update_burn(metrics, policy, tenant)
    if not met and tracer is not None:
        tracer.emit(
            SERVE_SLO_VIOLATION,
            tenant=tenant,
            objective_s=policy.slo_seconds,
            e2e_s=e2e_seconds,
            outcome=outcome,
        )
    return met


def _update_burn(metrics, policy, tenant):
    met = metrics.counter_value(SLO_MET, tenant=tenant)
    violated = metrics.counter_value(SLO_VIOLATED, tenant=tenant)
    total = met + violated
    if not total:
        return
    budget = 1.0 - policy.slo_target
    burn = (violated / total) / budget if budget > 0 else float("inf")
    metrics.gauge(SLO_BURN, tenant=tenant).set(burn)


def slo_report(metrics, policies):
    """Per-tenant SLO status as a JSON-able dict.

    *policies* maps tenant name → :class:`TenantPolicy` (tenants without
    ``slo_seconds`` are skipped).  For each SLO'd tenant: the objective,
    target, met/violated counts, the achieved fraction, and the burn
    rate — the same figures the gauges carry, recomputed exactly from
    the counters so the report is consistent even mid-update.
    """
    report = {}
    for tenant, policy in sorted(policies.items(), key=lambda kv: str(kv[0])):
        if policy.slo_seconds is None:
            continue
        met = metrics.counter_value(SLO_MET, tenant=tenant)
        violated = metrics.counter_value(SLO_VIOLATED, tenant=tenant)
        total = met + violated
        budget = 1.0 - policy.slo_target
        entry = {
            "objective_seconds": policy.slo_seconds,
            "target": policy.slo_target,
            "met": met,
            "violated": violated,
            "total": total,
        }
        if total:
            fraction = met / total
            entry["met_fraction"] = round(fraction, 6)
            entry["burn"] = (
                round((violated / total) / budget, 6)
                if budget > 0
                else float("inf")
            )
            entry["budget_remaining"] = round(
                1.0 - (violated / total) / budget, 6
            ) if budget > 0 else 0.0
        report[str(tenant)] = entry
    return report


def slo_counters_view(metrics):
    """SLO status reconstructed from the registry alone (no policies).

    The ``.slo`` CLI view works off whatever engine it is attached to —
    it may not hold the :class:`TenantPolicy` objects, but the
    ``serve.slo.*`` counters and burn gauges carry enough to render the
    per-tenant picture.  Returns ``tenant -> {met, violated, total,
    met_fraction, burn}`` (``burn`` only if the gauge exists).
    """
    tenants = {}

    def entry(labels):
        return tenants.setdefault(labels.get("tenant", "?"), {})

    for counter in metrics.counters_named(SLO_MET):
        entry(counter.labels)["met"] = counter.value
    for counter in metrics.counters_named(SLO_VIOLATED):
        entry(counter.labels)["violated"] = counter.value
    for gauge in metrics.gauges_named(SLO_BURN):
        entry(gauge.labels)["burn"] = gauge.value
    for stats in tenants.values():
        met = stats.setdefault("met", 0)
        violated = stats.setdefault("violated", 0)
        stats["total"] = met + violated
        if stats["total"]:
            stats["met_fraction"] = round(met / stats["total"], 6)
    return dict(sorted(tenants.items()))


def render_slo_report(report):
    """The report as aligned text for the ``.slo`` CLI view."""
    if not report:
        return "(no tenants with an SLO configured)"
    lines = []
    name_width = max(len(name) for name in report)
    for name, entry in report.items():
        if not entry["total"]:
            lines.append(
                "{:<{w}}  objective {:.3f}s @ {:.1%}  (no settled queries yet)"
                .format(name, entry["objective_seconds"], entry["target"],
                        w=name_width)
            )
            continue
        lines.append(
            "{:<{w}}  objective {:.3f}s @ {:.1%}  met {}/{} ({:.1%})  "
            "burn {:.2f}x".format(
                name,
                entry["objective_seconds"],
                entry["target"],
                entry["met"],
                entry["total"],
                entry["met_fraction"],
                entry["burn"],
                w=name_width,
            )
        )
    return "\n".join(lines)
