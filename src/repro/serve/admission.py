"""Admission control: per-tenant budgets, bounded queues, load shedding.

The admission controller is the gate between :class:`~repro.serve.session.QueryService`'s
API and its worker pool.  Its state machine per query:

``submitted`` → (queue full? → **shed** ``queue_full``)
→ ``queued`` → (deadline spent while waiting? → **shed** ``deadline``;
abandoned? → **cancelled**) → ``dispatched`` → released.

Shedding is *deadline-aware*: a query whose queue wait already consumed
its deadline is rejected at dispatch time with a typed
:class:`~repro.util.errors.AdmissionRejected` (``reason="deadline"``,
``retry_after`` populated from the controller's service-time estimate)
instead of being handed to a worker that could only burn pump slots on
it.  Queue-depth rejections happen at submit time, before the query
consumes any queue memory.

Fairness across tenants is delegated to
:class:`~repro.serve.scheduler.FairScheduler` (weighted stride
scheduling); this module adds the per-tenant *concurrency budget*
(``TenantPolicy.max_active``) as the scheduler's eligibility gate.
"""

import threading

from repro.serve.scheduler import FairScheduler
from repro.util.errors import AdmissionRejected
from repro.util.timing import resolve_clock

#: Tenant name used when a caller does not identify itself.
DEFAULT_TENANT = "default"

#: Shed reasons (the ``reason`` field of :class:`AdmissionRejected`).
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE = "deadline"
SHED_SHUTDOWN = "shutdown"

#: Dispatch verdicts returned by :meth:`AdmissionController.next_ready`.
ADMITTED = "admitted"
SHED = "shed"
CANCELLED = "cancelled"


class TenantPolicy:
    """Budgets for one tenant.

    ``weight``
        Fair-share weight (relative pump-slot share under contention).
    ``max_active``
        Concurrent queries this tenant may have running (``None`` =
        bounded only by the worker pool).
    ``max_queued``
        Queue-depth cap; submissions beyond it are shed immediately
        with ``reason="queue_full"``.
    ``slo_seconds``
        End-to-end latency objective (submit → settle).  ``None`` (the
        default) means no SLO accounting for this tenant; set, every
        settled query counts toward ``serve.slo.{met,violated}`` and the
        error-budget burn gauge (see DESIGN.md §13).
    ``slo_target``
        The fraction of queries expected to meet the objective (the
        "three nines" in "p99 under 2s"); the complement is the error
        budget the burn gauge is normalized against.
    """

    __slots__ = (
        "name", "weight", "max_active", "max_queued", "slo_seconds",
        "slo_target",
    )

    def __init__(
        self,
        name,
        weight=1.0,
        max_active=None,
        max_queued=None,
        slo_seconds=None,
        slo_target=0.99,
    ):
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        if max_active is not None and max_active < 1:
            raise ValueError("max_active must be at least 1")
        if max_queued is not None and max_queued < 0:
            raise ValueError("max_queued cannot be negative")
        if slo_seconds is not None and slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if not 0.0 < slo_target < 1.0:
            raise ValueError("slo_target must be in (0, 1)")
        self.name = name
        self.weight = float(weight)
        self.max_active = max_active
        self.max_queued = max_queued
        self.slo_seconds = slo_seconds
        self.slo_target = float(slo_target)

    def __repr__(self):
        text = "TenantPolicy({!r}, weight={}, max_active={}, max_queued={}".format(
            self.name, self.weight, self.max_active, self.max_queued
        )
        if self.slo_seconds is not None:
            text += ", slo={}s@{}".format(self.slo_seconds, self.slo_target)
        return text + ")"


class _TenantState:
    """Live accounting for one tenant."""

    __slots__ = (
        "policy",
        "queued",
        "active",
        "submitted",
        "admitted",
        "shed",
        "completed",
        "failed",
        "cancelled",
    )

    def __init__(self, policy):
        self.policy = policy
        self.queued = 0
        self.active = 0
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    def snapshot(self):
        return {
            "queued": self.queued,
            "active": self.active,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "weight": self.policy.weight,
        }


class AdmissionController:
    """Bounded, deadline-aware, weighted-fair admission queue.

    ``max_queued`` is the *service-wide* queue bound (per-tenant caps
    come from each :class:`TenantPolicy`).  ``service_time_estimate``
    seeds the EWMA used for ``retry_after`` hints; every completion
    reported via :meth:`observe_service_time` refines it.
    """

    def __init__(
        self,
        policies=None,
        max_queued=256,
        service_time_estimate=0.1,
        clock=None,
    ):
        self.clock = resolve_clock(clock)
        self.max_queued = max_queued
        self._cond = threading.Condition()
        self._scheduler = FairScheduler()
        self._states = {}
        self._closed = False
        self._mean_service = float(service_time_estimate)
        for policy in policies or ():
            self._ensure(policy.name, policy)

    # -- tenant registry -------------------------------------------------------

    def _ensure(self, tenant, policy=None):
        state = self._states.get(tenant)
        if state is None:
            state = _TenantState(policy or TenantPolicy(tenant))
            self._states[tenant] = state
            self._scheduler.set_weight(tenant, state.policy.weight)
        return state

    def policy_for(self, tenant):
        with self._cond:
            return self._ensure(tenant).policy

    def policies(self):
        """Snapshot of every registered tenant's policy."""
        with self._cond:
            return {
                tenant: state.policy for tenant, state in self._states.items()
            }

    # -- submit side -----------------------------------------------------------

    def submit(self, tenant, ticket):
        """Queue *ticket* for *tenant*, or shed with ``queue_full``.

        The ticket is any object carrying a duck-typed ``deadline``
        attribute (checked at dispatch) — the service uses its
        :class:`~repro.serve.session.QueryHandle`.
        """
        with self._cond:
            if self._closed:
                raise AdmissionRejected(
                    "query service is shutting down",
                    tenant=tenant,
                    reason=SHED_SHUTDOWN,
                )
            state = self._ensure(tenant)
            state.submitted += 1
            cap = state.policy.max_queued
            if (cap is not None and state.queued >= cap) or (
                self.max_queued is not None
                and self._scheduler.total_depth() >= self.max_queued
            ):
                state.shed += 1
                raise AdmissionRejected(
                    "tenant {!r} admission queue is full "
                    "({} queued)".format(tenant, state.queued),
                    tenant=tenant,
                    reason=SHED_QUEUE_FULL,
                    retry_after=self._retry_after_locked(state),
                )
            state.queued += 1
            self._scheduler.push(tenant, ticket)
            self._cond.notify()

    def _retry_after_locked(self, state):
        """Seconds until a retry plausibly finds room (an estimate).

        The backlog ahead of a retry drains at roughly one query per
        mean service time per active slot the tenant can use.
        """
        slots = state.policy.max_active or 1
        backlog = max(1, state.queued)
        return round(self._mean_service * backlog / slots, 4)

    # -- dispatch side (worker threads) ----------------------------------------

    def next_ready(self, timeout=None):
        """Block for the next dispatchable ticket.

        Returns ``(tenant, ticket, verdict)`` where *verdict* is:

        - :data:`ADMITTED` — the ticket holds an active slot; the caller
          must :meth:`release` when the query settles;
        - :data:`SHED` — the queue wait consumed the ticket's deadline;
          the caller should fail it fast (no slot held);
        - :data:`CANCELLED` — the ticket was abandoned while queued (its
          deadline was *cancelled*, not merely spent); no slot held;

        or ``None`` on timeout / after :meth:`close` with an empty queue.
        """
        deadline = (
            None if timeout is None else self.clock.now() + timeout
        )
        with self._cond:
            while True:
                picked = self._scheduler.pop(eligible=self._eligible_locked)
                if picked is not None:
                    tenant, ticket = picked
                    state = self._states[tenant]
                    state.queued -= 1
                    ticket_deadline = getattr(ticket, "deadline", None)
                    if ticket_deadline is not None and ticket_deadline.expired:
                        state.shed += 1
                        if ticket_deadline.cancelled:
                            state.cancelled += 1
                            return tenant, ticket, CANCELLED
                        return tenant, ticket, SHED
                    state.active += 1
                    state.admitted += 1
                    return tenant, ticket, ADMITTED
                if self._closed and self._scheduler.total_depth() == 0:
                    return None
                remaining = (
                    None if deadline is None else deadline - self.clock.now()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(timeout=remaining)

    def _eligible_locked(self, tenant):
        state = self._states[tenant]
        cap = state.policy.max_active
        return cap is None or state.active < cap

    def shed_verdict(self, tenant, ticket):
        """The typed rejection for a deadline-shed ticket."""
        with self._cond:
            state = self._ensure(tenant)
            retry_after = self._retry_after_locked(state)
        return AdmissionRejected(
            "queue wait consumed the deadline for tenant {!r}".format(tenant),
            tenant=tenant,
            reason=SHED_DEADLINE,
            retry_after=retry_after,
        )

    def reap_expired(self):
        """Shed every queued ticket whose deadline has already expired.

        Returns ``[(tenant, ticket, verdict)]`` — :data:`CANCELLED` for
        abandoned tickets, :data:`SHED` for spent deadlines — with the
        tickets already removed from the queue; the caller settles them.
        Dispatch-time checks alone would discover a dead ticket only at
        its fair-schedule turn, so its fast-fail latency would grow with
        the backlog; a periodic reap bounds it by the sweep interval.
        """

        def _expired(ticket):
            deadline = getattr(ticket, "deadline", None)
            return deadline is not None and deadline.expired

        out = []
        with self._cond:
            for tenant, ticket in self._scheduler.drain_where(_expired):
                state = self._states[tenant]
                state.queued -= 1
                state.shed += 1
                if ticket.deadline.cancelled:
                    state.cancelled += 1
                    out.append((tenant, ticket, CANCELLED))
                else:
                    out.append((tenant, ticket, SHED))
        return out

    def release(self, tenant, outcome="completed", service_seconds=None):
        """Return *tenant*'s active slot; *outcome* updates accounting."""
        with self._cond:
            state = self._states[tenant]
            state.active -= 1
            if outcome == "completed":
                state.completed += 1
            elif outcome == "failed":
                state.failed += 1
            elif outcome == "cancelled":
                state.cancelled += 1
            if service_seconds is not None:
                # EWMA keeps retry_after hints tracking the workload.
                self._mean_service += 0.2 * (
                    service_seconds - self._mean_service
                )
            self._cond.notify_all()

    def observe_service_time(self, seconds):
        with self._cond:
            self._mean_service += 0.2 * (seconds - self._mean_service)

    def withdraw(self, tenant, ticket):
        """Remove an abandoned ticket still sitting in the queue.

        Returns True when the ticket was withdrawn here (the caller
        settles it); False when it already left the queue (a worker will
        observe the cancelled deadline at dispatch instead).
        """
        with self._cond:
            if not self._scheduler.remove(tenant, ticket):
                return False
            state = self._states[tenant]
            state.queued -= 1
            state.cancelled += 1
            return True

    # -- lifecycle / introspection ---------------------------------------------

    def close(self, drain=True):
        """Stop admitting.  With ``drain=False`` the backlog is returned
        (un-dispatched tickets, for the caller to settle) instead of
        being left for the workers."""
        abandoned = []
        with self._cond:
            self._closed = True
            if not drain:
                while True:
                    picked = self._scheduler.pop()
                    if picked is None:
                        break
                    tenant, ticket = picked
                    state = self._states[tenant]
                    state.queued -= 1
                    state.shed += 1
                    abandoned.append((tenant, ticket))
            self._cond.notify_all()
        return abandoned

    @property
    def closed(self):
        with self._cond:
            return self._closed

    def stats(self):
        with self._cond:
            return {
                "queued": self._scheduler.total_depth(),
                "dispatched": self._scheduler.dispatched,
                "mean_service_estimate": round(self._mean_service, 6),
                "tenants": {
                    str(name): state.snapshot()
                    for name, state in sorted(
                        self._states.items(), key=lambda kv: str(kv[0])
                    )
                },
            }
