"""End-to-end query deadlines (and cooperative cancellation).

A :class:`Deadline` is the per-query time budget the service layer
threads from its API down through :class:`~repro.wsq.engine.WsqEngine`,
:class:`~repro.plan.physical.ExecOptions`,
:class:`~repro.asynciter.context.AsyncContext`,
:class:`~repro.asynciter.reqsync.ReqSync`, and
:meth:`~repro.asynciter.pump.RequestPump.register`: every external
call's remaining timeout is ``min(policy.call_timeout,
deadline.remaining())``, and a query that has already spent its budget
fails fast with :class:`~repro.util.errors.QueryDeadlineExceeded`
instead of occupying a pump slot.

The same object doubles as the *cancellation token* for client
disconnects: :meth:`cancel` expires the deadline immediately (with a
recorded reason), so every checkpoint that polls the deadline also
observes abandonment — one propagation path for both "too late" and
"nobody is listening".

The consumers duck-type (``remaining()`` / ``expired`` / ``budget()``),
so the core asynciter layer never imports this module — ``repro.serve``
stays an optional layer above the engine.
"""

import math

from repro.util.errors import QueryDeadlineExceeded
from repro.util.timing import resolve_clock

#: Reason recorded by :meth:`Deadline.cancel` when none is given.
CANCELLED = "cancelled"


class Deadline:
    """A monotonic-clock time budget with cooperative cancellation.

    ``seconds=None`` builds an *unbounded* deadline: it never expires on
    its own but can still be cancelled — the shape the query service
    uses for queries submitted without a timeout, so client disconnect
    always has a propagation path.
    """

    __slots__ = ("clock", "_expires_at", "_cancelled", "reason")

    def __init__(self, seconds=None, clock=None):
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds cannot be negative")
        self.clock = resolve_clock(clock)
        self._expires_at = (
            None if seconds is None else self.clock.now() + seconds
        )
        self._cancelled = False
        self.reason = None

    @classmethod
    def after(cls, seconds, clock=None):
        """A deadline *seconds* from now (``None`` = unbounded)."""
        return cls(seconds, clock=clock)

    # -- state -----------------------------------------------------------------

    def remaining(self):
        """Seconds of budget left: ``inf`` when unbounded, ``0.0`` floor."""
        if self._cancelled:
            return 0.0
        if self._expires_at is None:
            return math.inf
        return max(0.0, self._expires_at - self.clock.now())

    @property
    def expired(self):
        """True once the budget is spent (or the deadline cancelled)."""
        if self._cancelled:
            return True
        return (
            self._expires_at is not None
            and self.clock.now() >= self._expires_at
        )

    @property
    def cancelled(self):
        return self._cancelled

    def cancel(self, reason=CANCELLED):
        """Expire the deadline now (idempotent); records *reason*."""
        if not self._cancelled:
            self._cancelled = True
            self.reason = reason

    # -- composition -----------------------------------------------------------

    def budget(self, cap=None):
        """The effective timeout under *cap*: ``min(cap, remaining())``.

        Returns ``None`` (no bound) only when the deadline is unbounded
        *and* no cap is given — the shape ``asyncio.wait_for`` and the
        ReqSync wait loop expect.
        """
        rem = self.remaining()
        if rem == math.inf:
            return cap
        return rem if cap is None else min(cap, rem)

    def raise_if_expired(self, what="query"):
        """Raise :class:`QueryDeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise QueryDeadlineExceeded(
                "{} abandoned: {}".format(what, self.reason)
                if self._cancelled
                else "{} exceeded its deadline".format(what),
                deadline=self,
            )

    def __repr__(self):
        if self._cancelled:
            return "Deadline(cancelled: {})".format(self.reason)
        if self._expires_at is None:
            return "Deadline(unbounded)"
        return "Deadline({:.3f}s remaining)".format(self.remaining())
