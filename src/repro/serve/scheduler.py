"""Weighted fair scheduling of queued queries across tenants.

Classic stride scheduling over per-tenant FIFO queues: each dispatch
advances the chosen tenant's *virtual time* by ``1 / weight``, and the
next dispatch goes to the eligible backlogged tenant with the smallest
virtual time.  A tenant with weight 2 therefore drains twice as fast as
a weight-1 tenant under contention, while an uncontended tenant is
unaffected — the standard WFQ contract.

Idle tenants do not bank credit: when a tenant goes from idle to
backlogged its virtual time is brought forward to the scheduler's
current virtual clock, so a tenant that submitted nothing for an hour
cannot starve everyone else afterwards.

The structure is deliberately *not* thread-safe — the admission
controller guards it with its own lock, which keeps the fairness logic
deterministic and directly unit-testable.
"""

from collections import deque


class FairScheduler:
    """Stride scheduler over per-tenant FIFO queues (not thread-safe)."""

    def __init__(self):
        self._queues = {}  # tenant -> deque of items
        self._vtime = {}  # tenant -> virtual time
        self._weights = {}  # tenant -> weight (> 0)
        #: Virtual time of the most recent dispatch — the "now" an
        #: idle tenant is brought forward to when it re-arrives.
        self._clock = 0.0
        self.dispatched = 0

    def set_weight(self, tenant, weight):
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant):
        return self._weights.get(tenant, 1.0)

    def push(self, tenant, item):
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # Arriving from idle: no banked credit.
            self._vtime[tenant] = max(
                self._vtime.get(tenant, 0.0), self._clock
            )
        queue.append(item)

    def pop(self, eligible=None):
        """Dispatch from the min-vtime backlogged tenant.

        *eligible* optionally gates tenants (e.g. a per-tenant active
        budget); an ineligible tenant keeps its backlog and its place.
        Returns ``(tenant, item)`` or ``None`` when nothing is
        dispatchable.  Ties break on tenant name for determinism.
        """
        best = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            if eligible is not None and not eligible(tenant):
                continue
            key = (self._vtime.get(tenant, 0.0), str(tenant))
            if best is None or key < best[0]:
                best = (key, tenant)
        if best is None:
            return None
        tenant = best[1]
        item = self._queues[tenant].popleft()
        advance = 1.0 / self.weight_of(tenant)
        vtime = self._vtime.get(tenant, 0.0) + advance
        self._vtime[tenant] = vtime
        self._clock = max(self._clock, vtime - advance)
        self.dispatched += 1
        return tenant, item

    def drain_where(self, predicate):
        """Remove and return every queued ``(tenant, item)`` matching.

        Queue order among the survivors is preserved.  Used by the
        admission controller's expiry sweep: without it, a dead ticket
        would wait for its fair-schedule turn to be discovered.
        """
        drained = []
        for tenant, queue in self._queues.items():
            kept = deque()
            for item in queue:
                if predicate(item):
                    drained.append((tenant, item))
                else:
                    kept.append(item)
            if len(kept) != len(queue):
                self._queues[tenant] = kept
        return drained

    def remove(self, tenant, item):
        """Withdraw one queued *item* (e.g. an abandoned query)."""
        queue = self._queues.get(tenant)
        if queue is None:
            return False
        try:
            queue.remove(item)
        except ValueError:
            return False
        return True

    def depth(self, tenant):
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def total_depth(self):
        return sum(len(queue) for queue in self._queues.values())

    def backlogged(self):
        """Tenants with at least one queued item (sorted, for tests)."""
        return sorted(
            str(t) for t, queue in self._queues.items() if queue
        )
