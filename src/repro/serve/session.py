"""The multi-tenant query service: sessions, handles, worker pool.

:class:`QueryService` is the long-lived front end the ROADMAP's
"millions of users" north star asks for: many concurrent sessions
multiplexed over **one** shared :class:`~repro.wsq.engine.WsqEngine`
(hence one shared :class:`~repro.asynciter.pump.RequestPump` and one
shared result cache — coalescing and cache hits work *across* tenants).

Robustness is the headline contract:

- every query gets an end-to-end :class:`~repro.serve.deadline.Deadline`
  threaded down to each external call (see DESIGN.md §12);
- admission control (:mod:`repro.serve.admission`) sheds overload with
  typed :class:`~repro.util.errors.AdmissionRejected` instead of
  queueing unboundedly;
- pump slots are shared fairly across tenants
  (:mod:`repro.serve.scheduler`);
- a client disconnect (:meth:`Session.close` / :meth:`QueryHandle.cancel`)
  cancels the query's in-flight work all the way down to coalesced
  flight members, without disturbing other tenants' identical calls.

Thread model: ``max_workers`` daemon threads execute admitted queries
against the shared engine.  The engine is safe to share — the pump and
metrics registry are lock-guarded, and the tiered cache's per-query
scratch tier is thread-local.
"""

import concurrent.futures
import threading
import time

from repro.obs.trace import (
    SERVE_ADMIT,
    SERVE_CANCEL,
    SERVE_FINISH,
    SERVE_SHED,
    SERVE_START,
    SERVE_SUBMIT,
)
from repro.serve.admission import (
    ADMITTED,
    CANCELLED,
    DEFAULT_TENANT,
    AdmissionController,
    SHED_SHUTDOWN,
)
from repro.serve.deadline import Deadline
from repro.serve.slo import record_settlement, slo_report
from repro.util.errors import AdmissionRejected, QueryDeadlineExceeded
from repro.util.timing import resolve_clock

#: How often the reaper sweeps the admission queue for expired/abandoned
#: tickets.  This bounds a shed query's fast-fail latency: without the
#: sweep, a dead ticket would wait for its fair-schedule turn, so its
#: rejection would take as long as the backlog drain under overload.
REAP_INTERVAL = 0.05

#: Handle statuses.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
EXPIRED = "expired"
SHED = "shed"
ABANDONED = "cancelled"


class QueryHandle:
    """One submitted query: a future plus its lifecycle bookkeeping.

    ``result(timeout)`` blocks for the rows (raising the query's typed
    failure — :class:`AdmissionRejected`, :class:`QueryDeadlineExceeded`,
    or the execution error).  ``cancel()`` is the client-disconnect
    signal: it cancels the deadline (the shared token every checkpoint
    polls), withdraws the query if it is still queued, and otherwise
    lets the running query observe abandonment at its next checkpoint.
    """

    __slots__ = (
        "service",
        "tenant",
        "sql",
        "mode",
        "deadline",
        "submitted_at",
        "dispatched_at",
        "finished_at",
        "status",
        "_future",
    )

    def __init__(self, service, tenant, sql, mode, deadline, submitted_at):
        self.service = service
        self.tenant = tenant
        self.sql = sql
        self.mode = mode
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.dispatched_at = None
        self.finished_at = None
        self.status = QUEUED
        self._future = concurrent.futures.Future()

    def result(self, timeout=None):
        return self._future.result(timeout)

    def exception(self, timeout=None):
        return self._future.exception(timeout)

    def done(self):
        return self._future.done()

    def cancel(self, reason="client disconnect"):
        """Abandon the query; returns False if it already settled."""
        if self._future.done():
            return False
        self.deadline.cancel(reason)
        self.service._abandon(self)
        return True

    def _settle_result(self, value):
        try:
            self._future.set_result(value)
        except concurrent.futures.InvalidStateError:
            pass

    def _settle_exception(self, exc):
        try:
            self._future.set_exception(exc)
        except concurrent.futures.InvalidStateError:
            pass

    def __repr__(self):
        return "QueryHandle({!r}, tenant={!r}, {})".format(
            self.sql, self.tenant, self.status
        )


class Session:
    """One client's connection to the service.

    Closing the session is the disconnect event: every outstanding
    handle is cancelled, which propagates down to the pump (coalesced
    flight members detach; sole members cancel the physical call).
    """

    def __init__(self, service, tenant):
        self.service = service
        self.tenant = tenant
        self._lock = threading.Lock()
        self._handles = []
        self._closed = False

    def submit(self, sql, timeout=None, mode=None):
        """Submit asynchronously; returns a :class:`QueryHandle`.

        Raises :class:`AdmissionRejected` when shed at submit time
        (queue full / shutting down).
        """
        with self._lock:
            if self._closed:
                raise AdmissionRejected(
                    "session is closed", tenant=self.tenant, reason=SHED_SHUTDOWN
                )
        handle = self.service.submit(
            sql, tenant=self.tenant, timeout=timeout, mode=mode
        )
        with self._lock:
            self._handles.append(handle)
        return handle

    def execute(self, sql, timeout=None, mode=None):
        """Submit and block for the result (convenience)."""
        return self.submit(sql, timeout=timeout, mode=mode).result()

    def outstanding(self):
        with self._lock:
            return [h for h in self._handles if not h.done()]

    def close(self):
        """Disconnect: cancel everything still queued or running."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            if not handle.done():
                handle.cancel(reason="session closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class QueryService:
    """Multi-tenant query front end over one shared engine.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.wsq.engine.WsqEngine`.
    tenants:
        Iterable of :class:`TenantPolicy`; unknown tenants get a
        default policy (weight 1, unbounded) on first use.
    max_workers:
        Worker threads executing admitted queries — the service-wide
        concurrency ceiling.
    max_queued:
        Service-wide admission-queue bound (per-tenant caps come from
        the policies).
    default_timeout:
        Deadline (seconds) applied to queries submitted without one
        (``None`` = unbounded, still cancellable).
    calibration:
        Opt-in :class:`~repro.obs.calibration.CalibrationPolicy`.  When
        set, the reaper periodically rebuilds a
        :class:`~repro.obs.calibration.CalibrationProfile` from the
        engine's live tracer/metrics and re-prices the shared cost
        model — gated by the policy's sample floor and incompleteness
        rule (see :meth:`maybe_recalibrate`).
    """

    def __init__(
        self,
        engine,
        tenants=None,
        max_workers=4,
        max_queued=256,
        default_timeout=None,
        name="wsq-serve",
        calibration=None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.engine = engine
        self.name = name
        self.default_timeout = default_timeout
        self.clock = resolve_clock(getattr(engine, "clock", None))
        self.admission = AdmissionController(
            policies=tenants, max_queued=max_queued, clock=self.clock
        )
        self.max_workers = max_workers
        self.calibration = calibration
        self.last_profile = None
        self._last_calibration_attempt = None
        self._lock = threading.Lock()
        self._workers = []
        self._started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def _ensure_workers(self):
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.max_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name="{}-worker-{}".format(self.name, index),
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
            reaper = threading.Thread(
                target=self._reaper_loop,
                name="{}-reaper".format(self.name),
                daemon=True,
            )
            reaper.start()
            self._workers.append(reaper)

    def close(self, drain=True, timeout=5.0):
        """Stop the service.

        ``drain=True`` lets queued queries run to completion first;
        ``drain=False`` sheds the backlog with ``reason="shutdown"``.
        Either way no new submissions are accepted.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        backlog = self.admission.close(drain=drain)
        for tenant, handle in backlog:
            self._settle_shed(
                handle,
                AdmissionRejected(
                    "query service shut down before dispatch",
                    tenant=tenant,
                    reason=SHED_SHUTDOWN,
                ),
            )
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- client API ------------------------------------------------------------

    def session(self, tenant=DEFAULT_TENANT):
        return Session(self, tenant)

    def submit(self, sql, tenant=DEFAULT_TENANT, timeout=None, mode=None):
        """Admit one query; returns its :class:`QueryHandle`.

        Raises :class:`AdmissionRejected` for submit-time sheds (queue
        full, shutdown); dispatch-time sheds and execution failures
        surface from :meth:`QueryHandle.result` instead.
        """
        self._ensure_workers()
        if timeout is None:
            timeout = self.default_timeout
        submitted_at = self.clock.now()
        deadline = Deadline(timeout, clock=self.clock)
        handle = QueryHandle(
            self, tenant, sql, mode, deadline, submitted_at
        )
        metrics = self.engine.metrics
        metrics.inc("serve.submitted")
        metrics.inc("serve.submitted", tenant=tenant)
        self._emit(SERVE_SUBMIT, tenant=tenant, timeout=timeout)
        try:
            self.admission.submit(tenant, handle)
        except AdmissionRejected as exc:
            self._settle_shed(handle, exc)
            raise
        return handle

    def execute(self, sql, tenant=DEFAULT_TENANT, timeout=None, mode=None):
        """Submit and block for the result (convenience)."""
        return self.submit(sql, tenant=tenant, timeout=timeout, mode=mode).result()

    # -- worker pool -----------------------------------------------------------

    def _worker_loop(self):
        admission = self.admission
        while True:
            item = admission.next_ready(timeout=0.05)
            if item is None:
                if admission.closed:
                    return
                continue
            tenant, handle, verdict = item
            if verdict == CANCELLED:
                self._settle_abandoned(handle)
            elif verdict == ADMITTED:
                self._run_admitted(tenant, handle)
            else:  # deadline shed at dispatch
                self._settle_shed(
                    handle, admission.shed_verdict(tenant, handle)
                )

    def _reaper_loop(self):
        """Periodically shed queued tickets whose deadline already died.

        The sweep doubles as the recalibration heartbeat: with a
        :class:`CalibrationPolicy` attached, each pass gives
        :meth:`maybe_recalibrate` a chance to re-price the cost model
        from live traffic (the policy's interval does the pacing).
        """
        admission = self.admission
        while True:
            for tenant, handle, verdict in admission.reap_expired():
                if verdict == CANCELLED:
                    self._settle_abandoned(handle)
                else:
                    self._settle_shed(
                        handle, admission.shed_verdict(tenant, handle)
                    )
            if self.calibration is not None:
                self.maybe_recalibrate()
            if admission.closed:
                return
            time.sleep(REAP_INTERVAL)

    # -- calibration -----------------------------------------------------------

    def maybe_recalibrate(self, force=False):
        """Recalibrate the engine's cost model from live traffic.

        Respects the attached :class:`CalibrationPolicy`'s interval
        (*force* skips the pacing but not the sample/completeness gate)
        and records the attempt either way:
        ``serve.recalibrate.applied`` / ``serve.recalibrate.rejected``
        counters plus a ``serve.calibration.samples`` gauge.  Returns
        True when a new profile was applied.  Safe to call directly —
        deterministic tests on a :class:`~repro.util.timing.VirtualClock`
        drive this instead of waiting on the reaper's wall-clock sweep.
        """
        policy = self.calibration
        if policy is None:
            return False
        now = self.clock.now()
        with self._lock:
            last = self._last_calibration_attempt
            if (
                not force
                and last is not None
                and now - last < policy.interval_seconds
            ):
                return False
            self._last_calibration_attempt = now
        applied, profile, reason = self.engine.recalibrate(policy=policy)
        metrics = self.engine.metrics
        if applied:
            self.last_profile = profile
            metrics.inc("serve.recalibrate.applied")
            metrics.gauge("serve.calibration.samples").set(profile.samples)
        else:
            metrics.inc("serve.recalibrate.rejected")
        return applied

    def _run_admitted(self, tenant, handle):
        metrics = self.engine.metrics
        dispatched_at = self.clock.now()
        handle.dispatched_at = dispatched_at
        queue_wait = dispatched_at - handle.submitted_at
        metrics.inc("serve.admitted")
        metrics.inc("serve.admitted", tenant=tenant)
        metrics.observe("serve.queue_wait_seconds", queue_wait, tenant=tenant)
        self._emit(SERVE_ADMIT, tenant=tenant, queue_wait_s=queue_wait)
        self._emit(SERVE_START, tenant=tenant)
        handle.status = RUNNING
        outcome = COMPLETED
        kwargs = {"deadline": handle.deadline}
        if handle.mode is not None:
            kwargs["mode"] = handle.mode
        try:
            result = self.engine.execute(handle.sql, **kwargs)
        except QueryDeadlineExceeded as exc:
            outcome = ABANDONED if handle.deadline.cancelled else EXPIRED
            handle._settle_exception(exc)
        except Exception as exc:  # noqa: BLE001 - surfaced via the handle
            outcome = FAILED
            handle._settle_exception(exc)
        else:
            handle._settle_result(result)
        finished_at = self.clock.now()
        handle.finished_at = finished_at
        handle.status = outcome
        service_seconds = finished_at - dispatched_at
        metrics.inc("serve." + outcome)
        metrics.inc("serve." + outcome, tenant=tenant)
        if outcome == COMPLETED:
            metrics.observe(
                "serve.e2e_seconds", finished_at - handle.submitted_at,
                tenant=tenant,
            )
        if outcome != ABANDONED:
            # SLO accounting: completions (timely or late), failures,
            # and expiries all settle against the objective; a client
            # cancel is the caller's choice and charges nothing.
            record_settlement(
                metrics,
                self.engine.tracer,
                self.admission.policy_for(tenant),
                tenant,
                outcome,
                finished_at - handle.submitted_at,
                completed=outcome == COMPLETED,
            )
        if outcome == ABANDONED:
            self._emit(SERVE_CANCEL, tenant=tenant, where="running")
        else:
            self._emit(
                SERVE_FINISH,
                tenant=tenant,
                outcome=outcome,
                service_s=service_seconds,
            )
        release = {
            COMPLETED: "completed",
            FAILED: "failed",
            EXPIRED: "failed",
            ABANDONED: "cancelled",
        }[outcome]
        self.admission.release(
            tenant, outcome=release, service_seconds=service_seconds
        )

    # -- settlement helpers ----------------------------------------------------

    def _settle_shed(self, handle, exc):
        handle.status = SHED
        handle.finished_at = self.clock.now()
        metrics = self.engine.metrics
        metrics.inc("serve.shed")
        metrics.inc("serve.shed", tenant=handle.tenant)
        metrics.inc("serve.shed", reason=exc.reason)
        # The fast-fail latency the CI load gate bounds: how long a shed
        # caller waited before learning it should back off.
        metrics.observe(
            "serve.shed_latency_seconds",
            handle.finished_at - handle.submitted_at,
        )
        self._emit(
            SERVE_SHED,
            tenant=handle.tenant,
            reason=exc.reason,
            retry_after=exc.retry_after,
        )
        # A shed is an answer the service failed to give in time — it
        # charges the tenant's error budget like a late completion.
        record_settlement(
            metrics,
            self.engine.tracer,
            self.admission.policy_for(handle.tenant),
            handle.tenant,
            SHED,
            handle.finished_at - handle.submitted_at,
            completed=False,
        )
        handle._settle_exception(exc)

    def _settle_abandoned(self, handle):
        handle.status = ABANDONED
        handle.finished_at = self.clock.now()
        metrics = self.engine.metrics
        metrics.inc("serve.cancelled")
        metrics.inc("serve.cancelled", tenant=handle.tenant)
        self._emit(SERVE_CANCEL, tenant=handle.tenant, where="queued")
        handle._settle_exception(
            QueryDeadlineExceeded(
                "query abandoned while queued: {}".format(
                    handle.deadline.reason
                ),
                deadline=handle.deadline,
            )
        )

    def _abandon(self, handle):
        """Client-disconnect path from :meth:`QueryHandle.cancel`."""
        if self.admission.withdraw(handle.tenant, handle):
            self._settle_abandoned(handle)
        # Otherwise the query is running (or about to be dispatched):
        # the cancelled deadline interrupts it at the next checkpoint
        # and the worker settles it as cancelled.

    # -- observability ---------------------------------------------------------

    def _emit(self, name, **args):
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.emit(name, **args)

    def slo_report(self):
        """Per-tenant SLO status (see :func:`repro.serve.slo.slo_report`)."""
        return slo_report(self.engine.metrics, self.admission.policies())

    def stats(self):
        """Admission + pump accounting, one dict."""
        payload = {
            "admission": self.admission.stats(),
            "pump": self.engine.pump.snapshot(),
        }
        slo = self.slo_report()
        if slo:
            payload["slo"] = slo
        if self.last_profile is not None:
            payload["calibration"] = self.last_profile.to_dict()
        return payload
