"""DSQ: Database-Supported Web Queries (paper Sections 1 and 2).

DSQ "uses information stored in the database to enhance and explain Web
searches": given a keyword phrase, it correlates the phrase with terms
drawn from database columns by counting Web co-occurrence — and can chase
pairs of terms from different tables to surface triples (the paper's
state/movie/"scuba diving" example).

The implementation is deliberately built *on top of* WSQ: every
correlation is a WSQ SQL query over ``WebCount``, so DSQ inherits
asynchronous iteration's concurrency for free.
"""

from repro.dsq.session import Correlation, DsqReport, DsqSession, Refinement

__all__ = ["Correlation", "DsqReport", "DsqSession", "Refinement"]
