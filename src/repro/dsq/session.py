"""DSQ sessions: correlate a Web phrase with database terms."""

import itertools

from repro.relational.types import DataType
from repro.util.errors import ReproError


def _quote(value):
    return value.replace("'", "''")


class Refinement:
    """A suggested refined search: the phrase narrowed by one DB term."""

    __slots__ = ("expression", "term", "domain", "count")

    def __init__(self, expression, term, domain, count):
        self.expression = expression
        self.term = term
        self.domain = domain
        self.count = count

    def __repr__(self):
        return "Refinement({!r}, ~{} pages)".format(self.expression, self.count)


class Correlation:
    """Ranked co-occurrence of one phrase with one term domain."""

    def __init__(self, phrase, domain, ranking):
        self.phrase = phrase
        self.domain = domain  # e.g. "States.Name"
        self.ranking = ranking  # list of (term, count), best first

    def top(self, k):
        return self.ranking[:k]

    def nonzero(self):
        return [(term, count) for term, count in self.ranking if count > 0]

    def __repr__(self):
        return "Correlation({!r} ~ {}: {} terms)".format(
            self.phrase, self.domain, len(self.ranking)
        )


class DsqReport:
    """Everything DSQ found for one phrase."""

    def __init__(self, phrase, correlations, triples):
        self.phrase = phrase
        self.correlations = correlations  # domain -> Correlation
        self.triples = triples  # list of (term_a, term_b, count)

    def summary(self):
        lines = ["DSQ report for {!r}".format(self.phrase)]
        for domain, correlation in self.correlations.items():
            top = ", ".join(
                "{} ({})".format(t, c) for t, c in correlation.nonzero()[:5]
            )
            lines.append("  {}: {}".format(domain, top or "(no co-occurrences)"))
        if self.triples:
            lines.append("  triples:")
            for a, b, count in self.triples[:5]:
                lines.append("    <{}, {}, {!r}> ({})".format(a, b, self.phrase, count))
        return "\n".join(lines)


class DsqSession:
    """Database-supported exploration of Web search phrases.

    *domains* maps a label to ``(table, column)`` pairs whose values are
    candidate correlation terms; by default every string column of every
    table is eligible via :meth:`register_domain`.
    """

    def __init__(self, wsq_engine, mode="async"):
        self.engine = wsq_engine
        self.mode = mode
        self.domains = {}  # label -> (table, column)
        self._temp_counter = itertools.count()

    def register_domain(self, table, column, label=None):
        """Declare ``table.column`` as a source of correlation terms."""
        label = label or "{}.{}".format(table, column)
        schema = self.engine.database.table(table).schema
        index = schema.resolve(column)
        if schema[index].type is not DataType.STR:
            raise ReproError(
                "DSQ domains must be string columns; {}.{} is {}".format(
                    table, column, schema[index].type.value
                )
            )
        self.domains[label] = (table, column)
        return label

    # -- correlation ----------------------------------------------------------

    def correlate(self, phrase, table, column, label=None):
        """Rank the values of ``table.column`` by co-occurrence with *phrase*.

        Implemented as a WSQ query — a dependent join against WebCount
        with ``T2`` bound to the phrase — so all the per-term searches run
        concurrently under asynchronous iteration.
        """
        sql = (
            "Select {col} As Term, Count From {table}, WebCount "
            "Where {col} = T1 and T2 = '{phrase}' "
            "Order By Count Desc, Term"
        ).format(col=column, table=table, phrase=_quote(phrase))
        result = self.engine.execute(sql, mode=self.mode)
        return Correlation(phrase, label or "{}.{}".format(table, column), result.rows)

    def correlate_all(self, phrase):
        """Correlate *phrase* against every registered domain."""
        return {
            label: self.correlate(phrase, table, column, label)
            for label, (table, column) in sorted(self.domains.items())
        }

    # -- triples --------------------------------------------------------------------

    def triples(self, phrase, corr_a, corr_b, top_k=5):
        """Find ``(a, b, phrase)`` triples from two correlations' heads.

        Takes the top-*top_k* nonzero terms of each correlation, loads
        them into temporary tables, and runs one three-term NEAR query per
        pair — again a single WSQ query, so the |A|x|B| searches are
        concurrent.
        """
        top_a = [t for t, _ in corr_a.nonzero()[:top_k]]
        top_b = [t for t, _ in corr_b.nonzero()[:top_k]]
        if not top_a or not top_b:
            return []
        table_a = self._temp_table(top_a)
        table_b = self._temp_table(top_b)
        try:
            sql = (
                "Select A.Term, B.Term, Count "
                "From {ta} A, {tb} B, WebCount "
                "Where A.Term = T1 and B.Term = T2 and T3 = '{phrase}' "
                "Order By Count Desc, A.Term, B.Term"
            ).format(ta=table_a, tb=table_b, phrase=_quote(phrase))
            result = self.engine.execute(sql, mode=self.mode)
            return [row for row in result.rows if row[2] > 0]
        finally:
            self.engine.database.drop_table(table_a)
            self.engine.database.drop_table(table_b)

    # -- the full story ------------------------------------------------------------------

    def explain(self, phrase, triple_domains=None, top_k=5):
        """Build a full :class:`DsqReport` for *phrase*.

        *triple_domains*: optional pair of domain labels to chase triples
        across (defaults to the first two registered domains).
        """
        correlations = self.correlate_all(phrase)
        triples = []
        labels = triple_domains or sorted(self.domains)[:2]
        if len(labels) >= 2 and all(label in correlations for label in labels):
            triples = self.triples(
                phrase, correlations[labels[0]], correlations[labels[1]], top_k
            )
        return DsqReport(phrase, correlations, triples)

    # -- refinement and related-term discovery -------------------------------------

    def refine(self, phrase, top_k=5):
        """Suggest narrowed searches: *phrase* near each correlated DB term.

        This is DSQ "enhancing" a Web search: the database supplies
        candidate refinements, the Web supplies their result sizes, and
        the user gets back concrete next queries ranked by how much
        material each would surface.
        """
        refinements = []
        for label, correlation in self.correlate_all(phrase).items():
            for term, count in correlation.nonzero()[:top_k]:
                expression = '"{}" near "{}"'.format(term, phrase)
                refinements.append(Refinement(expression, term, label, count))
        refinements.sort(key=lambda r: (-r.count, r.term))
        return refinements[:top_k]

    def related(self, term, exclude_self=True):
        """DB terms that co-occur with *term* on the Web, across domains.

        The converse direction of :meth:`correlate`: instead of explaining
        a free phrase with database terms, explain one database value by
        the other database values it shares pages with.
        """
        correlations = self.correlate_all(term)
        if exclude_self:
            for correlation in correlations.values():
                correlation.ranking = [
                    (t, c)
                    for t, c in correlation.ranking
                    if t.lower() != term.lower()
                ]
        return correlations

    def _temp_table(self, terms):
        name = "__dsq_tmp_{}".format(next(self._temp_counter))
        self.engine.database.create_table_from_rows(
            name, [("Term", DataType.STR)], [(t,) for t in terms]
        )
        return name
