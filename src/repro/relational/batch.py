"""RowBatch: the unit of vectorized (batch-at-a-time) execution.

The Volcano iterator contract (``open/next/close``) pays one Python
virtual-call round trip through the whole operator stack *per tuple*.
Batch-at-a-time execution amortizes that: every ``next_batch()`` call
moves up to ``batch_size`` tuples through one operator hop, and the
WSQ-specific payoff is that an :class:`~repro.asynciter.aevscan.AEVScan`
can register a whole batch of external calls with the request pump in a
single operator round trip.

A :class:`RowBatch` is

- **schema-carrying**: ``batch.schema`` is the producing operator's
  output :class:`~repro.relational.schema.Schema`;
- **column-accessible**: ``batch.column(i)`` materializes one attribute
  across the (selected) rows, which is what the vectorized expression
  evaluators in :mod:`repro.relational.expr` consume;
- **selection-aware**: a *selection vector* (a list of indexes into
  ``rows``) lets a filter "delete" rows without copying the batch —
  iteration, ``len()``, and ``column()`` all respect it.

Rows remain plain Python tuples (the same objects the row-at-a-time
path produces), so placeholders, patching, and every existing helper
work unchanged on batch contents.
"""

import os

#: Hard default when neither the engine nor the environment says otherwise.
DEFAULT_BATCH_SIZE = 256

#: Environment override consumed at import time (CI runs the tier-1
#: suite under ``REPRO_BATCH_SIZE=1`` to pin degenerate batching to the
#: row-at-a-time semantics).
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"


def default_batch_size():
    """The process-wide default batch size (env-overridable, >= 1)."""
    raw = os.environ.get(BATCH_SIZE_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                "{}={!r} is not an integer".format(BATCH_SIZE_ENV, raw)
            ) from None
        if value < 1:
            raise ValueError(
                "{}={!r} must be >= 1".format(BATCH_SIZE_ENV, raw)
            )
        return value
    return DEFAULT_BATCH_SIZE


class RowBatch:
    """A fixed-capacity slice of tuples with an optional selection vector.

    ``rows`` is a list of row tuples; ``selection`` (when not ``None``)
    lists the indexes of the rows that are logically present, in order.
    Operators that drop rows cheaply (Filter, join predicates) attach a
    selection instead of rebuilding the row list; operators that need a
    dense list call :meth:`to_rows` or :meth:`compact`.
    """

    __slots__ = ("schema", "rows", "selection")

    def __init__(self, schema, rows, selection=None):
        self.schema = schema
        self.rows = rows
        self.selection = selection

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema, rows):
        """A dense batch over *rows* (materialized as a list)."""
        return cls(schema, list(rows))

    def select(self, indexes):
        """A new batch sharing ``rows`` but keeping only *indexes*.

        *indexes* are positions in this batch's logical order (i.e. they
        compose with any existing selection).
        """
        if self.selection is None:
            return RowBatch(self.schema, self.rows, list(indexes))
        base = self.selection
        return RowBatch(self.schema, self.rows, [base[i] for i in indexes])

    # -- access -------------------------------------------------------------

    def __len__(self):
        if self.selection is not None:
            return len(self.selection)
        return len(self.rows)

    def __bool__(self):
        return len(self) > 0

    def __iter__(self):
        if self.selection is None:
            return iter(self.rows)
        rows = self.rows
        return iter([rows[i] for i in self.selection])

    def to_rows(self):
        """The selected rows as a dense list (copies only if selected)."""
        if self.selection is None:
            return self.rows
        rows = self.rows
        return [rows[i] for i in self.selection]

    def compact(self):
        """This batch with any selection applied (dense rows, no vector)."""
        if self.selection is None:
            return self
        return RowBatch(self.schema, self.to_rows())

    def column(self, index):
        """All values of attribute *index* across the selected rows."""
        if self.selection is None:
            return [row[index] for row in self.rows]
        rows = self.rows
        return [rows[i][index] for i in self.selection]

    def columns(self):
        """Every attribute as a list of column vectors."""
        return [self.column(i) for i in range(len(self.schema))]

    def __repr__(self):
        return "RowBatch({} rows, {} cols{})".format(
            len(self),
            len(self.schema) if self.schema is not None else "?",
            ", selected" if self.selection is not None else "",
        )
