"""RowBatch / ColumnBatch: the units of vectorized (batch-at-a-time) execution.

The Volcano iterator contract (``open/next/close``) pays one Python
virtual-call round trip through the whole operator stack *per tuple*.
Batch-at-a-time execution amortizes that: every ``next_batch()`` call
moves up to ``batch_size`` tuples through one operator hop, and the
WSQ-specific payoff is that an :class:`~repro.asynciter.aevscan.AEVScan`
can register a whole batch of external calls with the request pump in a
single operator round trip.

Two batch layouts implement one logical contract:

- :class:`RowBatch` (the original, ``batch_layout="row"``) carries a list
  of row tuples;
- :class:`ColumnBatch` (``batch_layout="columnar"``, the default) carries
  one vector per attribute, with INT/FLOAT columns stored in typed
  ``array('q')``/``array('d')`` buffers when their values allow it.  A
  typed array *proves* the column holds only clean numbers (no NULLs, no
  placeholders), which is what lets the compiled kernels in
  :mod:`repro.relational.expr` skip every per-value guard.

Both are

- **schema-carrying**: ``batch.schema`` is the producing operator's
  output :class:`~repro.relational.schema.Schema`;
- **column-accessible**: ``batch.column(i)`` materializes one attribute
  across the (selected) rows;
- **selection-aware**: a *selection vector* (a list of indexes into the
  backing rows/columns) lets a filter "delete" rows without copying the
  batch — iteration, ``len()``, and ``column()`` all respect it.
  :meth:`narrow` composes selections *flat*: narrowing an
  already-narrowed batch materializes the composed vector once, so
  chained filters never stack indirections.

``to_rows()`` / ``from_rows()`` bridge the two layouts: rows are plain
Python tuples either way (the same objects the row-at-a-time path
produces), so placeholders, patching, and every existing helper work
unchanged on batch contents.
"""

import os
from array import array

from repro.relational.types import DataType

#: Hard default when neither the engine nor the environment says otherwise.
DEFAULT_BATCH_SIZE = 256

#: Environment override consumed at import time (CI runs the tier-1
#: suite under ``REPRO_BATCH_SIZE=1`` to pin degenerate batching to the
#: row-at-a-time semantics).
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

#: The two batch layouts every operator understands.
BATCH_LAYOUTS = ("columnar", "row")

#: Hard default layout (column-major with compiled kernels).
DEFAULT_BATCH_LAYOUT = "columnar"

#: Environment override, mirroring ``REPRO_BATCH_SIZE`` (CI runs a
#: ``REPRO_BATCH_LAYOUT=row`` leg to keep the row-major fallback green).
BATCH_LAYOUT_ENV = "REPRO_BATCH_LAYOUT"


def default_batch_size():
    """The process-wide default batch size (env-overridable, >= 1)."""
    raw = os.environ.get(BATCH_SIZE_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                "{}={!r} is not an integer".format(BATCH_SIZE_ENV, raw)
            ) from None
        if value < 1:
            raise ValueError(
                "{}={!r} must be >= 1".format(BATCH_SIZE_ENV, raw)
            )
        return value
    return DEFAULT_BATCH_SIZE


def default_batch_layout():
    """The process-wide default batch layout (env-overridable)."""
    raw = os.environ.get(BATCH_LAYOUT_ENV)
    if raw:
        value = raw.strip().lower()
        if value not in BATCH_LAYOUTS:
            raise ValueError(
                "{}={!r} must be one of {}".format(
                    BATCH_LAYOUT_ENV, raw, "/".join(BATCH_LAYOUTS)
                )
            )
        return value
    return DEFAULT_BATCH_LAYOUT


#: Schema types that get typed array storage when their values are clean.
_TYPECODES = {DataType.INT: "q", DataType.FLOAT: "d"}


def type_column(values, data_type):
    """Store *values* in the tightest container *data_type* allows.

    INT/FLOAT columns whose values are all clean numbers become typed
    ``array`` buffers (compact, C-speed iteration, and a structural proof
    of "no NULLs / no placeholders" the expression kernels exploit).
    Anything else — strings, NULLs, placeholders, type-lying rows — stays
    a plain list, which the guarded evaluation paths handle exactly.
    """
    code = _TYPECODES.get(data_type)
    if code is not None:
        try:
            return array(code, values)
        except (TypeError, ValueError, OverflowError):
            pass
    if isinstance(values, (list, array)):
        return values
    return list(values)


def _gather(column, selection):
    """*column* restricted to *selection*, preserving typed-array storage."""
    if isinstance(column, array):
        return array(column.typecode, [column[i] for i in selection])
    return [column[i] for i in selection]


class RowBatch:
    """A fixed-capacity slice of tuples with an optional selection vector.

    ``rows`` is a list of row tuples; ``selection`` (when not ``None``)
    lists the indexes of the rows that are logically present, in order.
    Operators that drop rows cheaply (Filter, join predicates) attach a
    selection instead of rebuilding the row list; operators that need a
    dense list call :meth:`to_rows` or :meth:`compact`.
    """

    __slots__ = ("schema", "rows", "selection")

    def __init__(self, schema, rows, selection=None):
        self.schema = schema
        self.rows = rows
        self.selection = selection

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema, rows):
        """A dense batch over *rows* (materialized as a list)."""
        return cls(schema, list(rows))

    def narrow(self, indexes):
        """A new batch sharing ``rows`` but keeping only *indexes*.

        *indexes* are positions in this batch's logical order.  Narrowing
        an already-narrowed batch materializes the *composed* vector once
        (one flat list of base indexes), so repeated narrowing never
        builds chains of index lookups.
        """
        if self.selection is None:
            return RowBatch(self.schema, self.rows, list(indexes))
        base = self.selection
        return RowBatch(self.schema, self.rows, [base[i] for i in indexes])

    #: Historical name for :meth:`narrow`.
    select = narrow

    def with_schema(self, schema):
        """This batch re-tagged with *schema* (zero-copy)."""
        return RowBatch(schema, self.rows, self.selection)

    # -- access -------------------------------------------------------------

    def __len__(self):
        if self.selection is not None:
            return len(self.selection)
        return len(self.rows)

    def __bool__(self):
        return len(self) > 0

    def __iter__(self):
        if self.selection is None:
            return iter(self.rows)
        rows = self.rows
        return iter([rows[i] for i in self.selection])

    def to_rows(self):
        """The selected rows as a dense list (copies only if selected)."""
        if self.selection is None:
            return self.rows
        rows = self.rows
        return [rows[i] for i in self.selection]

    def compact(self):
        """This batch with any selection applied (dense rows, no vector)."""
        if self.selection is None:
            return self
        return RowBatch(self.schema, self.to_rows())

    def column(self, index):
        """All values of attribute *index* across the selected rows."""
        if self.selection is None:
            return [row[index] for row in self.rows]
        rows = self.rows
        return [rows[i][index] for i in self.selection]

    def columns(self):
        """Every attribute as a list of column vectors."""
        return [self.column(i) for i in range(len(self.schema))]

    def __repr__(self):
        return "RowBatch({} rows, {} cols{})".format(
            len(self),
            len(self.schema) if self.schema is not None else "?",
            ", selected" if self.selection is not None else "",
        )


class ColumnBatch:
    """Column-major batch: one vector per attribute plus a selection vector.

    ``data[i]`` holds attribute *i* across all backing rows — a typed
    ``array`` for clean INT/FLOAT columns, a plain list otherwise (see
    :func:`type_column`).  ``rowcount`` is the backing length;
    ``selection`` (when not ``None``) lists the logically present row
    positions, exactly like :class:`RowBatch`.

    The batch is read-only by convention: operators narrow (sharing the
    column buffers) or build new batches, never mutate vectors in place.
    """

    __slots__ = ("schema", "data", "rowcount", "selection")

    def __init__(self, schema, columns, rowcount, selection=None):
        self.schema = schema
        self.data = columns
        self.rowcount = rowcount
        self.selection = selection

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema, rows):
        """Pivot *rows* (tuples) into schema-typed columns."""
        if not isinstance(rows, list):
            rows = list(rows)
        count = len(rows)
        if schema is not None:
            types = [column.type for column in schema]
        elif rows:
            types = [None] * len(rows[0])
        else:
            types = []
        if count:
            columns = [
                type_column(values, data_type)
                for values, data_type in zip(zip(*rows), types)
            ]
        else:
            columns = [type_column((), data_type) for data_type in types]
        return cls(schema, columns, count)

    @classmethod
    def from_columns(cls, schema, columns, rowcount=None):
        """A dense batch over pre-built column vectors (no re-typing)."""
        columns = list(columns)
        if rowcount is None:
            rowcount = len(columns[0]) if columns else 0
        return cls(schema, columns, rowcount)

    def narrow(self, indexes):
        """A new batch sharing the column buffers, keeping only *indexes*.

        Same flat-composition contract as :meth:`RowBatch.narrow`.
        """
        if self.selection is None:
            return ColumnBatch(self.schema, self.data, self.rowcount, list(indexes))
        base = self.selection
        return ColumnBatch(
            self.schema, self.data, self.rowcount, [base[i] for i in indexes]
        )

    #: Historical name for :meth:`narrow`.
    select = narrow

    def with_schema(self, schema):
        """This batch re-tagged with *schema* (zero-copy)."""
        return ColumnBatch(schema, self.data, self.rowcount, self.selection)

    # -- access -------------------------------------------------------------

    def __len__(self):
        if self.selection is not None:
            return len(self.selection)
        return self.rowcount

    def __bool__(self):
        return len(self) > 0

    def __iter__(self):
        return iter(self.to_rows())

    def to_rows(self):
        """The selected rows as a dense list of tuples."""
        data = self.data
        if not data:
            return [()] * len(self)
        if self.selection is None:
            return list(zip(*data))
        selection = self.selection
        return list(zip(*[_gather(column, selection) for column in data]))

    def compact(self):
        """This batch with any selection applied (dense columns, no vector)."""
        if self.selection is None:
            return self
        selection = self.selection
        columns = [_gather(column, selection) for column in self.data]
        return ColumnBatch(self.schema, columns, len(selection))

    def column(self, index):
        """Attribute *index* across the selected rows.

        Dense batches return the backing vector itself (zero-copy — do
        not mutate); narrowed batches gather, preserving typed storage.
        """
        column = self.data[index]
        if self.selection is None:
            return column
        return _gather(column, self.selection)

    def columns(self):
        """Every attribute as a list of column vectors (dense: zero-copy)."""
        if self.selection is None:
            return list(self.data)
        selection = self.selection
        return [_gather(column, selection) for column in self.data]

    def __repr__(self):
        return "ColumnBatch({} rows, {} cols{})".format(
            len(self),
            len(self.data),
            ", selected" if self.selection is not None else "",
        )
