"""Bound (executable) expressions.

These trees reference row positions by integer index, so evaluation is a
plain tuple lookup.  The planner produces them by resolving the SQL AST
against operator schemas; the plan rewriter remaps indexes when it moves
operators around (ReqSync percolation pulls selections and projections up).

NULL semantics are SQL-ish three-valued logic: comparisons involving NULL
yield NULL, conjunction/disjunction propagate unknown, and filters treat a
non-True result as "drop the row".
"""

import operator
from array import array
from itertools import repeat

from repro.relational.placeholder import Placeholder, require_concrete
from repro.relational.types import DataType, common_numeric_type, infer_literal_type
from repro.util.errors import TypeMismatchError


class BoundExpr:
    """Base class for bound expressions."""

    def eval(self, row):
        raise NotImplementedError

    def batch_eval(self, rows):
        """Evaluate over a sequence of rows; returns a list of values.

        The default is row-wise; operators that evaluate expressions on
        the hot path compile the tree once per ``open()`` with
        :func:`compile_batch_eval` instead of calling this repeatedly.
        """
        eval_one = self.eval
        return [eval_one(row) for row in rows]

    def referenced_columns(self):
        """Set of row indexes this expression reads."""
        raise NotImplementedError

    def remap(self, index_map):
        """Return a copy with column indexes translated via *index_map*."""
        raise NotImplementedError

    def result_type(self, schema):
        """Static type of the expression over *schema* (may be ``None``)."""
        raise NotImplementedError

    def sql(self, schema=None):
        """A human-readable rendering, used in plan explanations."""
        raise NotImplementedError

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.sql())


class Literal(BoundExpr):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def eval(self, row):
        return self.value

    def referenced_columns(self):
        return set()

    def remap(self, index_map):
        return self

    def result_type(self, schema):
        return infer_literal_type(self.value)

    def sql(self, schema=None):
        if isinstance(self.value, str):
            return "'{}'".format(self.value.replace("'", "''"))
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self):
        return hash((Literal, self.value))


class ColumnRef(BoundExpr):
    """A reference to a row position.  ``display`` is the original name."""

    __slots__ = ("index", "display")

    def __init__(self, index, display=None):
        self.index = index
        self.display = display

    def eval(self, row):
        return require_concrete(row[self.index], context=self.sql())

    def raw(self, row):
        """Read the value without the placeholder guard (for projections)."""
        return row[self.index]

    def referenced_columns(self):
        return {self.index}

    def remap(self, index_map):
        return ColumnRef(index_map[self.index], self.display)

    def result_type(self, schema):
        if schema is None:
            return None
        return schema[self.index].type

    def sql(self, schema=None):
        if schema is not None:
            return schema[self.index].qualified_name()
        return self.display or "#{}".format(self.index)

    def __eq__(self, other):
        return isinstance(other, ColumnRef) and self.index == other.index

    def __hash__(self):
        return hash((ColumnRef, self.index))


_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": None,  # handled specially: SQL-style division
}


class BinaryOp(BoundExpr):
    """Arithmetic over numeric operands (``+ - * /``).

    Division follows SQL conventions loosely: any division produces a FLOAT
    (the paper's Query 2 computes ``Count/Population`` as a ratio), and
    division by zero yields NULL rather than an error.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _ARITH_OPS:
            raise TypeMismatchError("unknown arithmetic operator {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row):
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if lhs is None or rhs is None:
            return None
        if self.op == "/":
            if rhs == 0:
                return None
            return lhs / rhs
        return _ARITH_OPS[self.op](lhs, rhs)

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def remap(self, index_map):
        return BinaryOp(self.op, self.left.remap(index_map), self.right.remap(index_map))

    def result_type(self, schema):
        lt = self.left.result_type(schema)
        rt = self.right.result_type(schema)
        if lt is None or rt is None:
            return None
        if self.op == "/":
            common_numeric_type(lt, rt)  # validate numeric
            return DataType.FLOAT
        return common_numeric_type(lt, rt)

    def sql(self, schema=None):
        return "({} {} {})".format(self.left.sql(schema), self.op, self.right.sql(schema))

    def __eq__(self, other):
        return (
            isinstance(other, BinaryOp)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((BinaryOp, self.op, self.left, self.right))


_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Comparison(BoundExpr):
    """A comparison predicate; NULL operands yield NULL (unknown)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _COMPARATORS:
            raise TypeMismatchError("unknown comparison operator {!r}".format(op))
        self.op = "!=" if op == "<>" else op
        self.left = left
        self.right = right

    def eval(self, row):
        lhs = self.left.eval(row)
        rhs = self.right.eval(row)
        if lhs is None or rhs is None:
            return None
        if isinstance(lhs, str) != isinstance(rhs, str):
            raise TypeMismatchError(
                "cannot compare {!r} with {!r}".format(lhs, rhs)
            )
        return _COMPARATORS[self.op](lhs, rhs)

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def remap(self, index_map):
        return Comparison(self.op, self.left.remap(index_map), self.right.remap(index_map))

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "{} {} {}".format(self.left.sql(schema), self.op, self.right.sql(schema))

    def is_equijoin(self):
        """True when this is ``col = col`` (the dependent-join feeder shape)."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((Comparison, self.op, self.left, self.right))


class Conjunction(BoundExpr):
    """AND over one or more predicates, with 3-valued logic."""

    __slots__ = ("terms",)

    def __init__(self, terms):
        self.terms = tuple(terms)
        if not self.terms:
            raise TypeMismatchError("empty conjunction")

    def eval(self, row):
        saw_null = False
        for term in self.terms:
            value = term.eval(row)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def referenced_columns(self):
        refs = set()
        for term in self.terms:
            refs |= term.referenced_columns()
        return refs

    def remap(self, index_map):
        return Conjunction(tuple(t.remap(index_map) for t in self.terms))

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return " AND ".join(t.sql(schema) for t in self.terms)

    def __eq__(self, other):
        return isinstance(other, Conjunction) and self.terms == other.terms

    def __hash__(self):
        return hash((Conjunction, self.terms))


class Disjunction(BoundExpr):
    """OR over one or more predicates, with 3-valued logic."""

    __slots__ = ("terms",)

    def __init__(self, terms):
        self.terms = tuple(terms)
        if not self.terms:
            raise TypeMismatchError("empty disjunction")

    def eval(self, row):
        saw_null = False
        for term in self.terms:
            value = term.eval(row)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def referenced_columns(self):
        refs = set()
        for term in self.terms:
            refs |= term.referenced_columns()
        return refs

    def remap(self, index_map):
        return Disjunction(tuple(t.remap(index_map) for t in self.terms))

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return " OR ".join("({})".format(t.sql(schema)) for t in self.terms)

    def __eq__(self, other):
        return isinstance(other, Disjunction) and self.terms == other.terms

    def __hash__(self):
        return hash((Disjunction, self.terms))


class Negation(BoundExpr):
    """NOT, with 3-valued logic (NOT NULL is NULL)."""

    __slots__ = ("term",)

    def __init__(self, term):
        self.term = term

    def eval(self, row):
        value = self.term.eval(row)
        if value is None:
            return None
        return not value

    def referenced_columns(self):
        return self.term.referenced_columns()

    def remap(self, index_map):
        return Negation(self.term.remap(index_map))

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "NOT ({})".format(self.term.sql(schema))

    def __eq__(self, other):
        return isinstance(other, Negation) and self.term == other.term

    def __hash__(self):
        return hash((Negation, self.term))


def conjunction_terms(expr):
    """Flatten *expr* into a list of AND-ed terms (identity for non-AND)."""
    if isinstance(expr, Conjunction):
        terms = []
        for term in expr.terms:
            terms.extend(conjunction_terms(term))
        return terms
    return [expr]


def make_conjunction(terms):
    """Build the smallest expression equal to AND-ing *terms*.

    Returns ``None`` for an empty list and the single term for length one.
    """
    terms = list(terms)
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return Conjunction(terms)


class LikePredicate(BoundExpr):
    """SQL LIKE matching: ``%`` = any run, ``_`` = any single character.

    The pattern is compiled once; NULL input yields NULL.
    """

    __slots__ = ("expr", "pattern", "negated", "_regex")

    def __init__(self, expr, pattern, negated=False):
        import re

        self.expr = expr
        self.pattern = pattern
        self.negated = negated
        translated = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        self._regex = re.compile("^(?:{})$".format(translated))

    def eval(self, row):
        value = self.expr.eval(row)
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeMismatchError("LIKE requires a string, got {!r}".format(value))
        matched = self._regex.match(value) is not None
        return (not matched) if self.negated else matched

    def referenced_columns(self):
        return self.expr.referenced_columns()

    def remap(self, index_map):
        return LikePredicate(self.expr.remap(index_map), self.pattern, self.negated)

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "{} {}LIKE '{}'".format(
            self.expr.sql(schema),
            "NOT " if self.negated else "",
            self.pattern.replace("'", "''"),
        )

    def __eq__(self, other):
        return (
            isinstance(other, LikePredicate)
            and self.expr == other.expr
            and self.pattern == other.pattern
            and self.negated == other.negated
        )

    def __hash__(self):
        return hash((LikePredicate, self.expr, self.pattern, self.negated))


class NullCheck(BoundExpr):
    """``IS NULL`` / ``IS NOT NULL`` — the only two-valued predicate."""

    __slots__ = ("expr", "negated")

    def __init__(self, expr, negated=False):
        self.expr = expr
        self.negated = negated

    def eval(self, row):
        # Evaluate via raw access where possible: IS NULL must not trip
        # the placeholder guard differently from other value reads, but a
        # placeholder is still "unknown", so the guard stays.
        value = self.expr.eval(row)
        is_null = value is None
        return (not is_null) if self.negated else is_null

    def referenced_columns(self):
        return self.expr.referenced_columns()

    def remap(self, index_map):
        return NullCheck(self.expr.remap(index_map), self.negated)

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "{} IS {}NULL".format(
            self.expr.sql(schema), "NOT " if self.negated else ""
        )

    def __eq__(self, other):
        return (
            isinstance(other, NullCheck)
            and self.expr == other.expr
            and self.negated == other.negated
        )

    def __hash__(self):
        return hash((NullCheck, self.expr, self.negated))


class SubqueryMixin:
    """Shared lazy materialization for subquery predicates.

    The subplan is executed once, on first evaluation, and its result is
    cached for the lifetime of the expression — sound because only
    *uncorrelated* subqueries are planned into these nodes.
    """

    def _subplan_rows(self):
        if self._rows is None:
            from repro.exec.operator import collect

            self._rows = collect(self.subplan)
        return self._rows


class InSubqueryPredicate(BoundExpr, SubqueryMixin):
    """``expr [NOT] IN (subplan)`` with SQL NULL semantics.

    ``x IN (...)`` is True on a match, NULL if no match but the subquery
    produced a NULL, else False; NOT IN negates through 3-valued logic.
    """

    __slots__ = ("expr", "subplan", "negated", "_rows")

    def __init__(self, expr, subplan, negated=False):
        self.expr = expr
        self.subplan = subplan
        self.negated = negated
        self._rows = None

    def eval(self, row):
        value = self.expr.eval(row)
        if value is None:
            return None
        candidates = self._subplan_rows()
        has_null = False
        for candidate in candidates:
            if candidate[0] is None:
                has_null = True
            elif candidate[0] == value:
                return False if self.negated else True
        if has_null:
            return None
        return True if self.negated else False

    def referenced_columns(self):
        return self.expr.referenced_columns()

    def remap(self, index_map):
        clone = InSubqueryPredicate(self.expr.remap(index_map), self.subplan, self.negated)
        clone._rows = self._rows
        return clone

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "{} {}IN (<subquery>)".format(
            self.expr.sql(schema), "NOT " if self.negated else ""
        )

    def __eq__(self, other):
        return self is other  # subplans have identity semantics

    def __hash__(self):
        return id(self)


# -- batch (vectorized) evaluation --------------------------------------------
#
# The batch executor compiles a BoundExpr tree *once per operator open()*
# into a closure over plain Python locals, removing the per-row virtual
# dispatch through the expression tree.  Semantics are mirrored exactly:
# evaluation order (left operand first), three-valued logic including
# per-row short-circuiting of AND/OR (a row whose first conjunct is False
# must never evaluate — and possibly raise on — the second), placeholder
# guards, and the string/number comparison type check.


def _scalar_operand(expr):
    """A fast ``row -> value`` getter for comparison/arithmetic operands."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        index = expr.index
        context = expr.sql()

        def read(row):
            value = row[index]
            if isinstance(value, Placeholder):
                require_concrete(value, context=context)
            return value

        return read
    return compile_scalar_eval(expr)


def compile_scalar_eval(expr):
    """Compile *expr* into a ``row -> value`` closure (exact semantics)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        return _scalar_operand(expr)
    if isinstance(expr, Comparison):
        compare = _COMPARATORS[expr.op]
        left = _scalar_operand(expr.left)
        right = _scalar_operand(expr.right)

        def comparison(row):
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, str) != isinstance(rhs, str):
                raise TypeMismatchError(
                    "cannot compare {!r} with {!r}".format(lhs, rhs)
                )
            return compare(lhs, rhs)

        return comparison
    if isinstance(expr, Conjunction):
        terms = [compile_scalar_eval(term) for term in expr.terms]

        def conjunction(row):
            saw_null = False
            for term in terms:
                value = term(row)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return conjunction
    if isinstance(expr, Disjunction):
        terms = [compile_scalar_eval(term) for term in expr.terms]

        def disjunction(row):
            saw_null = False
            for term in terms:
                value = term(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return disjunction
    if isinstance(expr, Negation):
        term = compile_scalar_eval(expr.term)

        def negation(row):
            value = term(row)
            if value is None:
                return None
            return not value

        return negation
    # Arithmetic, LIKE, NULL checks, subqueries, ...: the tree's own eval
    # is already correct; compiling buys nothing beyond the dispatch we
    # save at the shapes above.
    return expr.eval


def compile_batch_eval(expr):
    """Compile *expr* into a ``rows -> [values]`` batch evaluator.

    Call once per operator ``open()``; the returned closure is the
    per-batch hot path.  Row-wise evaluation order within the batch is
    preserved, so any error a row-at-a-time run would raise is raised at
    the same logical row.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda rows: [value] * len(rows)
    if isinstance(expr, ColumnRef):
        index = expr.index
        context = expr.sql()

        def column(rows):
            out = []
            append = out.append
            for row in rows:
                value = row[index]
                if isinstance(value, Placeholder):
                    require_concrete(value, context=context)
                append(value)
            return out

        return column
    scalar = compile_scalar_eval(expr)
    return lambda rows: [scalar(row) for row in rows]


def compile_batch_predicate(expr):
    """Compile a predicate into ``rows -> selection`` (indexes where True).

    SQL filter semantics: rows whose predicate is False *or NULL* are
    dropped, exactly like the row-at-a-time ``eval(row) is True`` check.
    """
    evaluator = compile_batch_eval(expr)

    def predicate(rows):
        values = evaluator(rows)
        return [i for i, value in enumerate(values) if value is True]

    return predicate


def compile_batch_projection(expressions):
    """Compile projection expressions into ``rows -> [output rows]``.

    Bare column references are copied *raw* (placeholders flow through,
    mirroring :meth:`ColumnRef.raw`); computed expressions evaluate with
    the usual placeholder guard.
    """
    getters = []
    for expr in expressions:
        if isinstance(expr, ColumnRef):
            index = expr.index
            getters.append(
                lambda rows, _i=index: [row[_i] for row in rows]
            )
        else:
            getters.append(compile_batch_eval(expr))

    def project(rows):
        columns = [getter(rows) for getter in getters]
        return list(zip(*columns))

    return project


# -- column-at-a-time (kernel) evaluation -------------------------------------
#
# The columnar executor compiles a BoundExpr tree once per operator
# ``open()`` into a *kernel*: a closure ``(cols, n) -> values`` over
# dense column vectors instead of row tuples.  Typed ``array`` columns
# (see :func:`repro.relational.batch.type_column`) structurally prove
# "only clean numbers here", so the hot loops drop every per-value
# guard; anything else (NULLs, placeholders, strings, mixed types) takes
# a guarded per-element loop or — for short-circuit-sensitive shapes —
# falls back to the exact row-wise evaluator over ``zip(*cols)``.
# Semantics are identical to row-at-a-time evaluation either way: same
# results, same error type at the same logical row.

#: Process-global kernel counters, surfaced as ``batch.kernel_compiled``
#: / ``batch.kernel_invoked`` metrics by the engine (see
#: :meth:`repro.wsq.engine.WsqEngine._drain_batches`).
_KERNEL_STATS = {"compiled": 0, "invoked": 0}


def kernel_stats():
    """A snapshot of the process-wide kernel compile/invoke counters."""
    return dict(_KERNEL_STATS)


def _guard_value(value, context):
    """The exact per-value read semantics of :meth:`ColumnRef.eval`."""
    if isinstance(value, Placeholder):
        require_concrete(value, context=context)
    return value


def _clean_literal(expr):
    """The literal's value when it can never NULL- or type-surprise a
    numeric array operand, else ``None`` (as a no-match marker)."""
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        return expr.value
    return None


def _rowwise_kernel(expr):
    """Exact fallback: pivot columns back to rows, run the scalar closure.

    Used for shapes where column-at-a-time evaluation could change which
    error fires first (per-row AND/OR short-circuit, LIKE, subqueries).
    The caller gathers only ``expr.referenced_columns()`` — a complete
    contract on every expression type — so unmaterialized slots can
    never be read and are pivoted as ``None`` streams.
    """
    scalar = compile_scalar_eval(expr)

    def kernel(cols, n):
        if not cols:
            empty = ()
            return [scalar(empty) for _ in range(n)]
        pivot = [repeat(None, n) if col is None else col for col in cols]
        return [scalar(row) for row in zip(*pivot)]

    return kernel


def _columnref_kernel(expr):
    index = expr.index
    context = expr.sql()

    def kernel(cols, n):
        col = cols[index]
        if isinstance(col, array):
            return col
        for value in col:
            if isinstance(value, Placeholder):
                require_concrete(value, context=context)
        return col

    return kernel


def _comparison_kernel(expr):
    """Kernel + safe column refs for a comparison, or ``(None, None)``.

    The second element lists the referenced column indexes when the
    comparison is *array-safe*: operands are column refs / numeric
    literals, so if every referenced column is a typed array the kernel
    can neither raise nor return NULL — which is what lets AND/OR
    combine term masks without observable short-circuit differences.
    """
    compare = _COMPARATORS[expr.op]
    left, right = expr.left, expr.right

    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        li, ri = left.index, right.index
        lctx, rctx = left.sql(), right.sql()

        def colcol(cols, n):
            a, b = cols[li], cols[ri]
            if isinstance(a, array) and isinstance(b, array):
                return [compare(x, y) for x, y in zip(a, b)]
            out = []
            append = out.append
            for x, y in zip(a, b):
                x = _guard_value(x, lctx)
                y = _guard_value(y, rctx)
                if x is None or y is None:
                    append(None)
                elif isinstance(x, str) != isinstance(y, str):
                    raise TypeMismatchError(
                        "cannot compare {!r} with {!r}".format(x, y)
                    )
                else:
                    append(compare(x, y))
            return out

        return colcol, (li, ri)

    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        index, context = left.index, left.sql()
        value = right.value
        clean = _clean_literal(right) is not None
        value_is_str = isinstance(value, str)

        def collit(cols, n):
            col = cols[index]
            if clean and isinstance(col, array):
                return [compare(x, value) for x in col]
            out = []
            append = out.append
            for x in col:
                x = _guard_value(x, context)
                if x is None or value is None:
                    append(None)
                elif isinstance(x, str) != value_is_str:
                    raise TypeMismatchError(
                        "cannot compare {!r} with {!r}".format(x, value)
                    )
                else:
                    append(compare(x, value))
            return out

        return collit, ((index,) if clean else None)

    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        value = left.value
        index, context = right.index, right.sql()
        clean = _clean_literal(left) is not None
        value_is_str = isinstance(value, str)

        def litcol(cols, n):
            col = cols[index]
            if clean and isinstance(col, array):
                return [compare(value, y) for y in col]
            out = []
            append = out.append
            for y in col:
                y = _guard_value(y, context)
                if value is None or y is None:
                    append(None)
                elif value_is_str != isinstance(y, str):
                    raise TypeMismatchError(
                        "cannot compare {!r} with {!r}".format(value, y)
                    )
                else:
                    append(compare(value, y))
            return out

        return litcol, ((index,) if clean else None)

    return None, None


def _binaryop_kernel(expr):
    """Kernel for arithmetic over column/literal operands, or ``None``."""
    op = expr.op
    arith = _ARITH_OPS[op]
    left, right = expr.left, expr.right

    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        li, ri = left.index, right.index
        lctx, rctx = left.sql(), right.sql()

        def colcol(cols, n):
            a, b = cols[li], cols[ri]
            fast = isinstance(a, array) and isinstance(b, array)
            if fast and op != "/":
                return [arith(x, y) for x, y in zip(a, b)]
            if fast:
                return [None if y == 0 else x / y for x, y in zip(a, b)]
            out = []
            append = out.append
            for x, y in zip(a, b):
                x = _guard_value(x, lctx)
                y = _guard_value(y, rctx)
                if x is None or y is None:
                    append(None)
                elif op == "/":
                    append(None if y == 0 else x / y)
                else:
                    append(arith(x, y))
            return out

        return colcol

    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        index, context = left.index, left.sql()
        value = right.value
        clean = _clean_literal(right) is not None

        def collit(cols, n):
            col = cols[index]
            if clean and isinstance(col, array):
                if op == "/":
                    if value == 0:
                        return [None] * n
                    return [x / value for x in col]
                return [arith(x, value) for x in col]
            out = []
            append = out.append
            for x in col:
                x = _guard_value(x, context)
                if x is None or value is None:
                    append(None)
                elif op == "/":
                    append(None if value == 0 else x / value)
                else:
                    append(arith(x, value))
            return out

        return collit

    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        value = left.value
        index, context = right.index, right.sql()
        clean = _clean_literal(left) is not None

        def litcol(cols, n):
            col = cols[index]
            if clean and isinstance(col, array):
                if op == "/":
                    return [None if y == 0 else value / y for y in col]
                return [arith(value, y) for y in col]
            out = []
            append = out.append
            for y in col:
                y = _guard_value(y, context)
                if value is None or y is None:
                    append(None)
                elif op == "/":
                    append(None if y == 0 else value / y)
                else:
                    append(arith(value, y))
            return out

        return litcol

    return None


def _logic_kernel(expr):
    """Mask-combining kernel for AND/OR, or ``None``.

    Row-at-a-time AND/OR short-circuits *per row* — a row whose first
    conjunct is False must never evaluate (and possibly raise on) the
    second.  Combining term masks evaluates every term for every row, so
    it is only used when that difference is unobservable: every term is
    an array-safe comparison (see :func:`_comparison_kernel`) *and*, at
    runtime, every referenced column actually is a typed array — then no
    term can raise or produce NULL, and the combine is pure boolean
    algebra.  Otherwise the kernel defers to the exact row-wise path.
    """
    is_and = isinstance(expr, Conjunction)
    terms = []
    refs = set()
    for term in expr.terms:
        kernel, safe = _comparison_kernel(term) if isinstance(term, Comparison) else (None, None)
        if kernel is None or safe is None:
            return None
        terms.append(kernel)
        refs.update(safe)
    refs = sorted(refs)
    rowwise = _rowwise_kernel(expr)

    def kernel(cols, n):
        for i in refs:
            if not isinstance(cols[i], array):
                return rowwise(cols, n)
        out = list(terms[0](cols, n))
        for term in terms[1:]:
            mask = term(cols, n)
            if is_and:
                out = [a and b for a, b in zip(out, mask)]
            else:
                out = [a or b for a, b in zip(out, mask)]
        return out

    return kernel


def _column_kernel(expr):
    """The best column kernel for *expr* (exact; falls back to row-wise)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda cols, n: [value] * n
    if isinstance(expr, ColumnRef):
        return _columnref_kernel(expr)
    if isinstance(expr, Comparison):
        kernel, _ = _comparison_kernel(expr)
        if kernel is not None:
            return kernel
        return _rowwise_kernel(expr)
    if isinstance(expr, BinaryOp):
        kernel = _binaryop_kernel(expr)
        if kernel is not None:
            return kernel
        return _rowwise_kernel(expr)
    if isinstance(expr, (Conjunction, Disjunction)):
        kernel = _logic_kernel(expr)
        if kernel is not None:
            return kernel
        return _rowwise_kernel(expr)
    if isinstance(expr, Negation):
        term = _column_kernel(expr.term)

        def negation(cols, n):
            return [None if v is None else not v for v in term(cols, n)]

        return negation
    return _rowwise_kernel(expr)


def _gather_columns(batch, refs, width):
    """A sparse column list for *batch*: only *refs* are materialized.

    Kernels index columns by absolute position, but a predicate usually
    touches a few of them — unreferenced slots stay ``None`` so a
    narrowed batch never gathers columns nobody reads.
    """
    cols = [None] * width
    for i in refs:
        cols[i] = batch.column(i)
    return cols


def _kernel_width(expr_refs, batch):
    if batch.schema is not None:
        return len(batch.schema)
    return (max(expr_refs) + 1) if expr_refs else 0


def compile_column_eval(expr):
    """Compile *expr* into a ``batch -> [values]`` column evaluator.

    Call once per operator ``open()``.  Exact row-at-a-time semantics
    (same values, same error at the same logical row) with typed-array
    fast paths when the batch's columns allow them.
    """
    _KERNEL_STATS["compiled"] += 1
    kernel = _column_kernel(expr)
    refs = sorted(expr.referenced_columns())

    def evaluate(batch):
        _KERNEL_STATS["invoked"] += 1
        cols = _gather_columns(batch, refs, _kernel_width(refs, batch))
        return kernel(cols, len(batch))

    return evaluate


def compile_column_predicate(expr):
    """Compile a predicate into ``batch -> selection`` (positions where True).

    The columnar twin of :func:`compile_batch_predicate`: rows whose
    predicate is False *or NULL* are dropped.  The common hot shape —
    a comparison of a typed array column against a numeric literal —
    emits the selection vector directly from the array, skipping the
    intermediate truth-value list.
    """
    _KERNEL_STATS["compiled"] += 1
    kernel = _column_kernel(expr)
    refs = sorted(expr.referenced_columns())

    direct = None
    if isinstance(expr, Comparison):
        if isinstance(expr.left, ColumnRef):
            value = _clean_literal(expr.right)
            if value is not None:
                direct = (_COMPARATORS[expr.op], expr.left.index, value, False)
        elif isinstance(expr.right, ColumnRef):
            value = _clean_literal(expr.left)
            if value is not None:
                direct = (_COMPARATORS[expr.op], expr.right.index, value, True)

    def predicate(batch):
        _KERNEL_STATS["invoked"] += 1
        cols = _gather_columns(batch, refs, _kernel_width(refs, batch))
        if direct is not None:
            compare, index, value, flipped = direct
            col = cols[index]
            if isinstance(col, array):
                if flipped:
                    return [i for i, v in enumerate(col) if compare(value, v)]
                return [i for i, v in enumerate(col) if compare(v, value)]
        values = kernel(cols, len(batch))
        return [i for i, v in enumerate(values) if v is True]

    return predicate


def compile_column_projection(expressions):
    """Compile projections into ``batch -> [column vectors]``.

    The columnar twin of :func:`compile_batch_projection`: bare column
    references are passed through *raw* (zero-copy on dense batches,
    placeholders flow, mirroring :meth:`ColumnRef.raw`), computed
    expressions run as column kernels with the usual guards.
    """
    _KERNEL_STATS["compiled"] += 1
    plans = []
    refs = set()
    for expr in expressions:
        if isinstance(expr, ColumnRef):
            plans.append((expr.index, None))
        else:
            plans.append((None, _column_kernel(expr)))
            refs |= expr.referenced_columns()
    refs = sorted(refs)

    def project(batch):
        _KERNEL_STATS["invoked"] += 1
        n = len(batch)
        cols = None
        out = []
        for raw_index, kernel in plans:
            if kernel is None:
                out.append(batch.column(raw_index))
            else:
                if cols is None:
                    cols = _gather_columns(batch, refs, _kernel_width(refs, batch))
                out.append(kernel(cols, n))
        return out

    return project


class ExistsPredicate(BoundExpr, SubqueryMixin):
    """``EXISTS (subplan)``: true iff the subquery returns any row."""

    __slots__ = ("subplan", "_rows")

    def __init__(self, subplan):
        self.subplan = subplan
        self._rows = None

    def eval(self, row):
        return len(self._subplan_rows()) > 0

    def referenced_columns(self):
        return set()

    def remap(self, index_map):
        clone = ExistsPredicate(self.subplan)
        clone._rows = self._rows
        return clone

    def result_type(self, schema):
        return DataType.BOOL

    def sql(self, schema=None):
        return "EXISTS (<subquery>)"

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)
