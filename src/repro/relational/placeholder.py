"""Placeholder values for asynchronous iteration (paper Section 4.1).

When an :class:`~repro.asynciter.aevscan.AEVScan` registers an external call
with the request pump, it immediately returns a tuple whose not-yet-known
attribute values are :class:`Placeholder` objects.  A placeholder plays the
two roles the paper assigns it:

1. it marks the attribute (and hence the tuple) as *incomplete*, and
2. it identifies the pending ReqPump call — plus which field of that call's
   result — that will supply the true value.

Placeholders are defined in the relational layer (not the async layer)
because they are ordinary attribute values that flow through oblivious
operators such as dependent joins and cross products.
"""

from repro.util.errors import PlaceholderError


class Placeholder:
    """A pending attribute value: ``(call_id, field)`` of an external call.

    ``field`` names the column of the external call's result rows that this
    placeholder will be patched from (e.g. ``"count"``, ``"url"``,
    ``"rank"``).
    """

    __slots__ = ("call_id", "field")

    def __init__(self, call_id, field):
        self.call_id = call_id
        self.field = field

    def __repr__(self):
        return "<?{}:{}>".format(self.call_id, self.field)

    def __eq__(self, other):
        return (
            isinstance(other, Placeholder)
            and self.call_id == other.call_id
            and self.field == other.field
        )

    def __hash__(self):
        return hash((Placeholder, self.call_id, self.field))


def is_placeholder(value):
    return isinstance(value, Placeholder)


def row_pending_calls(row):
    """Return the set of call ids referenced by placeholders in *row*."""
    return {v.call_id for v in row if isinstance(v, Placeholder)}


def require_concrete(value, context="expression"):
    """Raise :class:`PlaceholderError` if *value* is still a placeholder.

    Operators that *depend on* an attribute value call this; hitting a
    placeholder here means the ReqSync percolation rules were violated.
    """
    if isinstance(value, Placeholder):
        raise PlaceholderError(
            "{} evaluated over unresolved placeholder {!r}; a ReqSync "
            "operator should have been placed below this operator".format(
                context, value
            )
        )
    return value
