"""Value types supported by the engine.

The type system is intentionally small — the paper's Redbase prototype
supports a comparable subset — but it is enforced: the storage layer
serializes by declared type, and the planner raises
:class:`~repro.util.errors.TypeMismatchError` for incompatible expressions.
"""

import enum

from repro.util.errors import TypeMismatchError


class DataType(enum.Enum):
    """Column data types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"  # stored as ISO-8601 string 'YYYY-MM-DD'
    BOOL = "bool"

    def python_types(self):
        return _PYTHON_TYPES[self]

    @property
    def is_numeric(self):
        return self in (DataType.INT, DataType.FLOAT)


_PYTHON_TYPES = {
    DataType.INT: (int,),
    DataType.FLOAT: (float, int),
    DataType.STR: (str,),
    DataType.DATE: (str,),
    DataType.BOOL: (bool,),
}


def infer_literal_type(value):
    """Infer the :class:`DataType` of a Python literal (``None`` allowed)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STR
    raise TypeMismatchError("unsupported literal type: {!r}".format(type(value)))


def coerce_value(value, data_type):
    """Validate/convert *value* for storage in a column of *data_type*.

    ``None`` (SQL NULL) passes through unchanged.  INT→FLOAT widening is the
    only implicit conversion; everything else must match exactly.
    """
    if value is None:
        return None
    if data_type is DataType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if data_type is DataType.INT and isinstance(value, bool):
        raise TypeMismatchError("BOOL value in INT column")
    if not isinstance(value, data_type.python_types()):
        raise TypeMismatchError(
            "value {!r} does not fit column type {}".format(value, data_type.value)
        )
    return value


def common_numeric_type(left, right):
    """Return the wider of two numeric types, or raise."""
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(
            "arithmetic requires numeric operands, got {} and {}".format(
                left.value, right.value
            )
        )
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    return DataType.INT
