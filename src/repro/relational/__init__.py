"""Relational data model shared by every layer.

This package defines the value types, column/schema metadata, and the bound
(executable) expression tree.  The SQL front end produces *unbound* syntax
trees (:mod:`repro.sql.ast`); the planner resolves names against schemas and
emits the bound expressions defined here.
"""

from repro.relational.types import DataType, coerce_value, infer_literal_type
from repro.relational.schema import Column, Schema
from repro.relational.batch import (
    BATCH_LAYOUTS,
    DEFAULT_BATCH_LAYOUT,
    DEFAULT_BATCH_SIZE,
    ColumnBatch,
    RowBatch,
    default_batch_layout,
    default_batch_size,
    type_column,
)
from repro.relational.expr import (
    BinaryOp,
    BoundExpr,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
    compile_batch_eval,
    compile_batch_predicate,
    compile_batch_projection,
    compile_column_eval,
    compile_column_predicate,
    compile_column_projection,
    kernel_stats,
)
from repro.relational.placeholder import (
    Placeholder,
    is_placeholder,
    row_pending_calls,
)

__all__ = [
    "BATCH_LAYOUTS",
    "DEFAULT_BATCH_LAYOUT",
    "DEFAULT_BATCH_SIZE",
    "ColumnBatch",
    "Placeholder",
    "RowBatch",
    "is_placeholder",
    "row_pending_calls",
    "BinaryOp",
    "BoundExpr",
    "Column",
    "ColumnRef",
    "Comparison",
    "Conjunction",
    "DataType",
    "Disjunction",
    "Literal",
    "Negation",
    "Schema",
    "coerce_value",
    "compile_batch_eval",
    "compile_batch_predicate",
    "compile_batch_projection",
    "compile_column_eval",
    "compile_column_predicate",
    "compile_column_projection",
    "default_batch_layout",
    "default_batch_size",
    "infer_literal_type",
    "kernel_stats",
    "type_column",
]
