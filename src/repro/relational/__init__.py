"""Relational data model shared by every layer.

This package defines the value types, column/schema metadata, and the bound
(executable) expression tree.  The SQL front end produces *unbound* syntax
trees (:mod:`repro.sql.ast`); the planner resolves names against schemas and
emits the bound expressions defined here.
"""

from repro.relational.types import DataType, coerce_value, infer_literal_type
from repro.relational.schema import Column, Schema
from repro.relational.expr import (
    BinaryOp,
    BoundExpr,
    ColumnRef,
    Comparison,
    Conjunction,
    Disjunction,
    Literal,
    Negation,
)
from repro.relational.placeholder import (
    Placeholder,
    is_placeholder,
    row_pending_calls,
)

__all__ = [
    "Placeholder",
    "is_placeholder",
    "row_pending_calls",
    "BinaryOp",
    "BoundExpr",
    "Column",
    "ColumnRef",
    "Comparison",
    "Conjunction",
    "DataType",
    "Disjunction",
    "Literal",
    "Negation",
    "Schema",
    "coerce_value",
    "infer_literal_type",
]
