"""Columns and schemas.

A :class:`Schema` is an ordered list of :class:`Column` objects.  Columns
carry an optional *qualifier* — the table alias they came from — so that
name resolution can disambiguate ``AV.URL`` from ``G.URL`` after joins, as in
the paper's Query 6.
"""

from repro.util.errors import CatalogError, PlanError


class Column:
    """A named, typed column, optionally qualified by a table alias."""

    __slots__ = ("name", "type", "qualifier")

    def __init__(self, name, data_type, qualifier=None):
        self.name = name
        self.type = data_type
        self.qualifier = qualifier

    def qualified_name(self):
        if self.qualifier:
            return "{}.{}".format(self.qualifier, self.name)
        return self.name

    def matches(self, name, qualifier=None):
        """Does this column answer to *name* (and *qualifier*, if given)?"""
        if name.lower() != self.name.lower():
            return False
        if qualifier is None:
            return True
        return self.qualifier is not None and qualifier.lower() == self.qualifier.lower()

    def with_qualifier(self, qualifier):
        return Column(self.name, self.type, qualifier)

    def __repr__(self):
        return "Column({}:{})".format(self.qualified_name(), self.type.value)

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
            and self.qualifier == other.qualifier
        )

    def __hash__(self):
        return hash((self.name, self.type, self.qualifier))


class Schema:
    """An ordered, immutable collection of columns with name resolution."""

    __slots__ = ("columns",)

    def __init__(self, columns, allow_duplicates=False):
        # Query *output* schemas may repeat a name (the paper's Query 4
        # outputs two ``Count`` columns); relation schemas may not.
        self.columns = tuple(columns)
        if allow_duplicates:
            return
        seen = set()
        for col in self.columns:
            key = (col.qualifier, col.name.lower())
            if key in seen:
                raise CatalogError("duplicate column {}".format(col.qualified_name()))
            seen.add(key)

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __getitem__(self, index):
        return self.columns[index]

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self):
        return "Schema({})".format(", ".join(c.qualified_name() for c in self.columns))

    def names(self):
        return [c.name for c in self.columns]

    def qualified_names(self):
        return [c.qualified_name() for c in self.columns]

    def resolve(self, name, qualifier=None):
        """Return the index of the column answering to *name*.

        Raises :class:`PlanError` for unknown or ambiguous references.
        """
        matches = [
            i for i, c in enumerate(self.columns) if c.matches(name, qualifier)
        ]
        if not matches:
            target = "{}.{}".format(qualifier, name) if qualifier else name
            raise PlanError("unknown column {!r}".format(target))
        if len(matches) > 1:
            target = "{}.{}".format(qualifier, name) if qualifier else name
            raise PlanError(
                "ambiguous column {!r} (candidates: {})".format(
                    target,
                    ", ".join(self.columns[i].qualified_name() for i in matches),
                )
            )
        return matches[0]

    def maybe_resolve(self, name, qualifier=None):
        """Like :meth:`resolve` but returns ``None`` when not found/ambiguous."""
        try:
            return self.resolve(name, qualifier)
        except PlanError:
            return None

    def concat(self, other):
        """Schema of a join: this schema's columns followed by *other*'s."""
        return Schema(self.columns + tuple(other.columns))

    def project(self, indexes):
        return Schema(tuple(self.columns[i] for i in indexes))

    def with_qualifier(self, qualifier):
        """Re-qualify every column (used when a table gets a FROM alias)."""
        return Schema(tuple(c.with_qualifier(qualifier) for c in self.columns))
