"""Abstract syntax tree for the SQL dialect.

These nodes are *unbound*: column references are ``(qualifier, name)`` pairs
that the planner resolves against schemas.  Every node renders back to SQL
via ``sql()`` (useful for diagnostics and round-trip tests).
"""


class AstNode:
    def sql(self):
        raise NotImplementedError

    def __repr__(self):
        return "{}<{}>".format(type(self).__name__, self.sql())

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self), self._key()))

    def _key(self):
        raise NotImplementedError


# -- expressions -------------------------------------------------------------


class Name(AstNode):
    """A column reference, optionally qualified: ``States.Name`` or ``Count``."""

    def __init__(self, name, qualifier=None):
        self.name = name
        self.qualifier = qualifier

    def sql(self):
        if self.qualifier:
            return "{}.{}".format(self.qualifier, self.name)
        return self.name

    def _key(self):
        return (self.name.lower(), self.qualifier.lower() if self.qualifier else None)


class Const(AstNode):
    """A literal: integer, float, string, boolean, or NULL."""

    def __init__(self, value):
        self.value = value

    def sql(self):
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return "'{}'".format(self.value.replace("'", "''"))
        return str(self.value)

    def _key(self):
        return (type(self.value), self.value)


class Arith(AstNode):
    """Arithmetic: ``+ - * /``."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def sql(self):
        return "({} {} {})".format(self.left.sql(), self.op, self.right.sql())

    def _key(self):
        return (self.op, self.left, self.right)


class Cmp(AstNode):
    """Comparison: ``= <> != < <= > >=``."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def sql(self):
        return "{} {} {}".format(self.left.sql(), self.op, self.right.sql())

    def _key(self):
        return (self.op, self.left, self.right)


class LogicalAnd(AstNode):
    def __init__(self, terms):
        self.terms = tuple(terms)

    def sql(self):
        return " AND ".join(t.sql() for t in self.terms)

    def _key(self):
        return self.terms


class LogicalOr(AstNode):
    def __init__(self, terms):
        self.terms = tuple(terms)

    def sql(self):
        return " OR ".join("({})".format(t.sql()) for t in self.terms)

    def _key(self):
        return self.terms


class LogicalNot(AstNode):
    def __init__(self, term):
        self.term = term

    def sql(self):
        return "NOT ({})".format(self.term.sql())

    def _key(self):
        return (self.term,)


class FuncCall(AstNode):
    """Aggregate call: ``COUNT(*)``, ``SUM(expr)``, ``AVG/MIN/MAX``."""

    def __init__(self, func, argument=None, star=False):
        self.func = func.upper()
        self.argument = argument
        self.star = star

    def sql(self):
        inner = "*" if self.star else self.argument.sql()
        return "{}({})".format(self.func, inner)

    def _key(self):
        return (self.func, self.argument, self.star)


class Star(AstNode):
    """``*`` or ``alias.*`` in a select list."""

    def __init__(self, qualifier=None):
        self.qualifier = qualifier

    def sql(self):
        if self.qualifier:
            return "{}.*".format(self.qualifier)
        return "*"

    def _key(self):
        return (self.qualifier,)


# -- query structure ----------------------------------------------------------


class SelectItem(AstNode):
    """One select-list entry: an expression with an optional output alias."""

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias

    def sql(self):
        if self.alias:
            return "{} As {}".format(self.expr.sql(), self.alias)
        return self.expr.sql()

    def _key(self):
        return (self.expr, self.alias.lower() if self.alias else None)


class TableRef(AstNode):
    """A FROM-list entry: table name plus optional alias.

    ``WebPages_AV AV`` parses to ``TableRef("WebPages_AV", "AV")``.
    """

    def __init__(self, table, alias=None):
        self.table = table
        self.alias = alias

    @property
    def binding_name(self):
        """The name other clauses use to refer to this relation."""
        return self.alias or self.table

    def sql(self):
        if self.alias:
            return "{} {}".format(self.table, self.alias)
        return self.table

    def _key(self):
        return (self.table.lower(), self.alias.lower() if self.alias else None)


class OrderItem(AstNode):
    def __init__(self, expr, descending=False):
        self.expr = expr
        self.descending = descending

    def sql(self):
        return "{}{}".format(self.expr.sql(), " Desc" if self.descending else "")

    def _key(self):
        return (self.expr, self.descending)


class SelectQuery(AstNode):
    """A parsed SELECT statement."""

    def __init__(
        self,
        select_items,
        from_tables,
        where=None,
        group_by=None,
        having=None,
        order_by=None,
        limit=None,
        distinct=False,
    ):
        self.select_items = list(select_items)
        self.from_tables = list(from_tables)
        self.where = where
        self.group_by = list(group_by) if group_by else []
        self.having = having
        self.order_by = list(order_by) if order_by else []
        self.limit = limit
        self.distinct = distinct

    def sql(self):
        parts = ["Select "]
        if self.distinct:
            parts.append("Distinct ")
        parts.append(", ".join(item.sql() for item in self.select_items))
        parts.append(" From ")
        parts.append(", ".join(t.sql() for t in self.from_tables))
        if self.where is not None:
            parts.append(" Where ")
            parts.append(self.where.sql())
        if self.group_by:
            parts.append(" Group By ")
            parts.append(", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append(" Having ")
            parts.append(self.having.sql())
        if self.order_by:
            parts.append(" Order By ")
            parts.append(", ".join(o.sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(" Limit {}".format(self.limit))
        return "".join(parts)

    def _key(self):
        return (
            tuple(self.select_items),
            tuple(self.from_tables),
            self.where,
            tuple(self.group_by),
            self.having,
            tuple(self.order_by),
            self.limit,
            self.distinct,
        )


# -- DDL / DML ----------------------------------------------------------------


class CreateTable(AstNode):
    """``CREATE TABLE name (col type, ...)``."""

    def __init__(self, table, columns):
        self.table = table
        self.columns = list(columns)  # (name, DataType)

    _TYPE_NAMES = {"str": "string"}  # DataType.value -> SQL keyword

    def sql(self):
        cols = ", ".join(
            "{} {}".format(n, self._TYPE_NAMES.get(t.value, t.value))
            for n, t in self.columns
        )
        return "Create Table {} ({})".format(self.table, cols)

    def _key(self):
        return (self.table.lower(), tuple(self.columns))


class DropTable(AstNode):
    def __init__(self, table):
        self.table = table

    def sql(self):
        return "Drop Table {}".format(self.table)

    def _key(self):
        return (self.table.lower(),)


class Insert(AstNode):
    """``INSERT INTO name VALUES (...), (...)``."""

    def __init__(self, table, rows):
        self.table = table
        self.rows = [tuple(r) for r in rows]

    def sql(self):
        values = ", ".join(
            "({})".format(", ".join(Const(v).sql() for v in row)) for row in self.rows
        )
        return "Insert Into {} Values {}".format(self.table, values)

    def _key(self):
        return (self.table.lower(), tuple(self.rows))


class Delete(AstNode):
    """``DELETE FROM name [WHERE expr]``."""

    def __init__(self, table, where=None):
        self.table = table
        self.where = where

    def sql(self):
        suffix = " Where {}".format(self.where.sql()) if self.where else ""
        return "Delete From {}{}".format(self.table, suffix)

    def _key(self):
        return (self.table.lower(), self.where)


class Like(AstNode):
    """``expr [NOT] LIKE 'pattern'`` with SQL ``%``/``_`` wildcards."""

    def __init__(self, expr, pattern, negated=False):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated

    def sql(self):
        return "{} {}Like {}".format(
            self.expr.sql(), "Not " if self.negated else "", Const(self.pattern).sql()
        )

    def _key(self):
        return (self.expr, self.pattern, self.negated)


class InList(AstNode):
    """``expr [NOT] IN (v1, v2, ...)`` over literal values."""

    def __init__(self, expr, values, negated=False):
        self.expr = expr
        self.values = tuple(values)
        self.negated = negated

    def sql(self):
        rendered = ", ".join(Const(v).sql() for v in self.values)
        return "{} {}In ({})".format(
            self.expr.sql(), "Not " if self.negated else "", rendered
        )

    def _key(self):
        return (self.expr, self.values, self.negated)


class Between(AstNode):
    """``expr [NOT] BETWEEN low AND high`` (inclusive)."""

    def __init__(self, expr, low, high, negated=False):
        self.expr = expr
        self.low = low
        self.high = high
        self.negated = negated

    def sql(self):
        return "{} {}Between {} And {}".format(
            self.expr.sql(), "Not " if self.negated else "",
            self.low.sql(), self.high.sql(),
        )

    def _key(self):
        return (self.expr, self.low, self.high, self.negated)


class IsNull(AstNode):
    """``expr IS [NOT] NULL``."""

    def __init__(self, expr, negated=False):
        self.expr = expr
        self.negated = negated

    def sql(self):
        return "{} Is {}Null".format(self.expr.sql(), "Not " if self.negated else "")

    def _key(self):
        return (self.expr, self.negated)


class CreateIndex(AstNode):
    """``CREATE INDEX name ON table (column)``."""

    def __init__(self, name, table, column):
        self.name = name
        self.table = table
        self.column = column

    def sql(self):
        return "Create Index {} On {} ({})".format(self.name, self.table, self.column)

    def _key(self):
        return (self.name.lower(), self.table.lower(), self.column.lower())


class DropIndex(AstNode):
    """``DROP INDEX name``."""

    def __init__(self, name):
        self.name = name

    def sql(self):
        return "Drop Index {}".format(self.name)

    def _key(self):
        return (self.name.lower(),)


class InSelect(AstNode):
    """``expr [NOT] IN (SELECT ...)`` — an uncorrelated subquery."""

    def __init__(self, expr, subquery, negated=False):
        self.expr = expr
        self.subquery = subquery
        self.negated = negated

    def sql(self):
        return "{} {}In ({})".format(
            self.expr.sql(), "Not " if self.negated else "", self.subquery.sql()
        )

    def _key(self):
        return (self.expr, self.subquery, self.negated)


class Exists(AstNode):
    """``EXISTS (SELECT ...)`` — an uncorrelated existence test."""

    def __init__(self, subquery):
        self.subquery = subquery

    def sql(self):
        return "Exists ({})".format(self.subquery.sql())

    def _key(self):
        return (self.subquery,)


class Analyze(AstNode):
    """``ANALYZE [table]`` — collect optimizer statistics."""

    def __init__(self, table=None):
        self.table = table

    def sql(self):
        return "Analyze{}".format(" " + self.table if self.table else "")

    def _key(self):
        return (self.table.lower() if self.table else None,)
