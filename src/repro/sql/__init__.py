"""SQL front end: lexer, abstract syntax tree, recursive-descent parser.

The dialect is the select-project-join subset the paper's Redbase prototype
supports, extended with the pieces its example queries need (expressions in
the select list, ``ORDER BY ... DESC``, aliases for multiple references to
one virtual table) plus small conveniences (``DISTINCT``, ``GROUP BY`` with
aggregates, ``LIMIT``, and DDL/DML statements for the REPL).
"""

from repro.sql.ast import (
    Arith,
    Cmp,
    CreateTable,
    Delete,
    DropTable,
    FuncCall,
    Insert,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Name,
    Const,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_select

__all__ = [
    "Arith",
    "Cmp",
    "Const",
    "CreateTable",
    "Delete",
    "DropTable",
    "FuncCall",
    "Insert",
    "LogicalAnd",
    "LogicalNot",
    "LogicalOr",
    "Name",
    "OrderItem",
    "SelectItem",
    "SelectQuery",
    "Star",
    "TableRef",
    "Token",
    "TokenType",
    "parse",
    "parse_select",
    "tokenize",
]
