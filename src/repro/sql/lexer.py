"""SQL lexer.

Produces a flat token stream with source positions (for caret diagnostics).
Keywords are case-insensitive; identifiers keep their original spelling.
String literals use single quotes with ``''`` as the escape for a quote.
"""

import enum

from repro.util.errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


# Type names (int, date, ...) are deliberately NOT keywords: they collide
# with legitimate column names (WebPages has a Date column).  CREATE TABLE
# recognizes them as plain identifiers.
KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "not",
    "order", "group", "by", "asc", "desc", "limit", "having", "as",
    "insert", "into", "values", "create", "table", "drop", "delete",
    "null", "like", "in", "is", "true", "false", "between", "index", "on",
    "exists", "analyze",
}

# Multi-character symbols must be listed before their prefixes.
SYMBOLS = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", "/", ";", "%"]


class Token:
    __slots__ = ("type", "value", "position")

    def __init__(self, token_type, value, position):
        self.type = token_type
        self.value = value
        self.position = position

    def is_keyword(self, word):
        return self.type is TokenType.KEYWORD and self.value == word.lower()

    def is_symbol(self, symbol):
        return self.type is TokenType.SYMBOL and self.value == symbol

    def __repr__(self):
        return "Token({}, {!r})".format(self.type.value, self.value)


def tokenize(text):
    """Tokenize *text*, returning a list ending in an EOF token."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):  # line comment
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.lower() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.lower(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlSyntaxError(
                "unexpected character {!r}".format(ch), position=i, text=text
            )
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _read_string(text, start):
    i = start + 1
    parts = []
    while True:
        if i >= len(text):
            raise SqlSyntaxError(
                "unterminated string literal", position=start, text=text
            )
        ch = text[i]
        if ch == "'":
            if text.startswith("''", i):
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1


def _read_number(text, start):
    i = start
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # A dot not followed by a digit terminates the number (so that
            # "1.foo" lexes as INT DOT IDENT rather than a malformed float).
            if i + 1 >= n or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    literal = text[start:i]
    if seen_dot:
        return Token(TokenType.FLOAT, float(literal), start), i
    return Token(TokenType.INT, int(literal), start), i
