"""Recursive-descent parser for the SQL dialect.

Entry points:

- :func:`parse_select` — parse exactly one SELECT statement.
- :func:`parse` — parse any supported statement (SELECT / CREATE TABLE /
  DROP TABLE / INSERT / DELETE), as used by the REPL.
"""

from repro.relational.types import DataType
from repro.sql.ast import (
    Analyze,
    Arith,
    Between,
    Cmp,
    Const,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Exists,
    InSelect,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Name,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    TableRef,
)
from repro.sql.lexer import TokenType, tokenize
from repro.util.errors import SqlSyntaxError

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_TYPE_KEYWORDS = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "varchar": DataType.STR,
    "string": DataType.STR,
    "date": DataType.DATE,
    "bool": DataType.BOOL,
}


def parse_select(text):
    """Parse *text* as a single SELECT statement and return its AST."""
    statement = parse(text)
    if not isinstance(statement, SelectQuery):
        raise SqlSyntaxError("expected a SELECT statement")
    return statement


def parse(text):
    """Parse one statement of any supported kind."""
    parser = _Parser(text)
    statement = parser.statement()
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *words):
        if any(self.current.is_keyword(w) for w in words):
            return self.advance()
        return None

    def accept_symbol(self, symbol):
        if self.current.is_symbol(symbol):
            return self.advance()
        return None

    def expect_keyword(self, word):
        token = self.accept_keyword(word)
        if token is None:
            self.fail("expected keyword {!r}".format(word.upper()))
        return token

    def expect_symbol(self, symbol):
        token = self.accept_symbol(symbol)
        if token is None:
            self.fail("expected {!r}".format(symbol))
        return token

    def expect_ident(self):
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        self.fail("expected identifier")

    def expect_end(self):
        self.accept_symbol(";")
        if self.current.type is not TokenType.EOF:
            self.fail("unexpected trailing input")

    def fail(self, message):
        raise SqlSyntaxError(
            "{} (got {!r})".format(message, self.current.value),
            position=self.current.position,
            text=self.text,
        )

    # -- statements -----------------------------------------------------------

    def statement(self):
        if self.current.is_keyword("select"):
            return self.select_query()
        if self.current.is_keyword("create"):
            return self.create_table()
        if self.current.is_keyword("drop"):
            return self.drop_table()
        if self.current.is_keyword("insert"):
            return self.insert()
        if self.current.is_keyword("delete"):
            return self.delete()
        if self.current.is_keyword("analyze"):
            self.advance()
            table = None
            if self.current.type is TokenType.IDENT:
                table = self.advance().value
            return Analyze(table)
        self.fail("expected a statement")

    def select_query(self):
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        select_items = self.select_list()
        self.expect_keyword("from")
        from_tables = self.from_list()
        where = None
        if self.accept_keyword("where"):
            where = self.expression()
        group_by = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self.expression_list()
        having = None
        if self.accept_keyword("having"):
            having = self.expression()
        order_by = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self.order_list()
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.type is not TokenType.INT:
                self.fail("LIMIT requires an integer")
            limit = token.value
        return SelectQuery(
            select_items,
            from_tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def create_table(self):
        self.expect_keyword("create")
        if self.accept_keyword("index"):
            name = self.expect_ident()
            self.expect_keyword("on")
            table = self.expect_ident()
            self.expect_symbol("(")
            column = self.expect_ident()
            self.expect_symbol(")")
            return CreateIndex(name, table, column)
        self.expect_keyword("table")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = []
        while True:
            name = self.expect_ident()
            type_token = self.advance()
            if (
                type_token.type is not TokenType.IDENT
                or type_token.value.lower() not in _TYPE_KEYWORDS
            ):
                self.fail("expected a column type")
            data_type = _TYPE_KEYWORDS[type_token.value.lower()]
            if data_type is DataType.STR and self.accept_symbol("("):
                self.advance()  # ignore VARCHAR length
                self.expect_symbol(")")
            columns.append((name, data_type))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return CreateTable(table, columns)

    def drop_table(self):
        self.expect_keyword("drop")
        if self.accept_keyword("index"):
            return DropIndex(self.expect_ident())
        self.expect_keyword("table")
        return DropTable(self.expect_ident())

    def insert(self):
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        self.expect_keyword("values")
        rows = []
        while True:
            self.expect_symbol("(")
            row = []
            while True:
                row.append(self.literal_value())
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")")
            rows.append(tuple(row))
            if not self.accept_symbol(","):
                break
        return Insert(table, rows)

    def delete(self):
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("where"):
            where = self.expression()
        return Delete(table, where)

    def literal_value(self):
        negative = self.accept_symbol("-") is not None
        token = self.advance()
        if token.type in (TokenType.INT, TokenType.FLOAT):
            return -token.value if negative else token.value
        if negative:
            self.fail("expected a number after '-'")
        if token.type is TokenType.STRING:
            return token.value
        if token.type is TokenType.KEYWORD and token.value == "null":
            return None
        if token.type is TokenType.KEYWORD and token.value in ("true", "false"):
            return token.value == "true"
        self.fail("expected a literal value")

    # -- clauses ----------------------------------------------------------------

    def select_list(self):
        items = []
        while True:
            items.append(self.select_item())
            if not self.accept_symbol(","):
                break
        return items

    def select_item(self):
        if self.accept_symbol("*"):
            return SelectItem(Star())
        # "alias.*" needs two-token lookahead before falling into expressions.
        if (
            self.current.type is TokenType.IDENT
            and self.tokens[self.pos + 1].is_symbol(".")
            and self.tokens[self.pos + 2].is_symbol("*")
        ):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(Star(qualifier))
        expr = self.expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def from_list(self):
        tables = []
        while True:
            table = self.expect_ident()
            alias = None
            if self.accept_keyword("as"):
                alias = self.expect_ident()
            elif self.current.type is TokenType.IDENT:
                alias = self.advance().value
            tables.append(TableRef(table, alias))
            if not self.accept_symbol(","):
                break
        return tables

    def order_list(self):
        items = []
        while True:
            expr = self.expression()
            descending = False
            if self.accept_keyword("desc"):
                descending = True
            elif self.accept_keyword("asc"):
                descending = False
            items.append(OrderItem(expr, descending))
            if not self.accept_symbol(","):
                break
        return items

    def expression_list(self):
        items = [self.expression()]
        while self.accept_symbol(","):
            items.append(self.expression())
        return items

    # -- expressions --------------------------------------------------------------

    def expression(self):
        return self.or_expr()

    def or_expr(self):
        terms = [self.and_expr()]
        while self.accept_keyword("or"):
            terms.append(self.and_expr())
        if len(terms) == 1:
            return terms[0]
        return LogicalOr(terms)

    def and_expr(self):
        terms = [self.not_expr()]
        while self.accept_keyword("and"):
            terms.append(self.not_expr())
        if len(terms) == 1:
            return terms[0]
        return LogicalAnd(terms)

    def not_expr(self):
        if self.accept_keyword("not"):
            return LogicalNot(self.not_expr())
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_symbol("(")
            subquery = self.select_query()
            self.expect_symbol(")")
            return Exists(subquery)
        return self.comparison()

    def comparison(self):
        left = self.additive()
        for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self.accept_symbol(op):
                right = self.additive()
                return Cmp(op, left, right)
        negated = self.accept_keyword("not") is not None
        if self.accept_keyword("like"):
            token = self.advance()
            if token.type is not TokenType.STRING:
                self.fail("LIKE requires a string pattern")
            return Like(left, token.value, negated=negated)
        if self.accept_keyword("in"):
            self.expect_symbol("(")
            if self.current.is_keyword("select"):
                subquery = self.select_query()
                self.expect_symbol(")")
                return InSelect(left, subquery, negated=negated)
            values = [self.literal_value()]
            while self.accept_symbol(","):
                values.append(self.literal_value())
            self.expect_symbol(")")
            return InList(left, values, negated=negated)
        if self.accept_keyword("between"):
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return Between(left, low, high, negated=negated)
        if negated:
            self.fail("expected LIKE, IN, or BETWEEN after NOT")
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return IsNull(left, negated=is_negated)
        return left

    def additive(self):
        expr = self.multiplicative()
        while True:
            if self.accept_symbol("+"):
                expr = Arith("+", expr, self.multiplicative())
            elif self.accept_symbol("-"):
                expr = Arith("-", expr, self.multiplicative())
            else:
                return expr

    def multiplicative(self):
        expr = self.unary()
        while True:
            if self.accept_symbol("*"):
                expr = Arith("*", expr, self.unary())
            elif self.accept_symbol("/"):
                expr = Arith("/", expr, self.unary())
            else:
                return expr

    def unary(self):
        if self.accept_symbol("-"):
            operand = self.unary()
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return Const(-operand.value)
            return Arith("-", Const(0), operand)
        return self.primary()

    def primary(self):
        token = self.current
        if token.type in (TokenType.INT, TokenType.FLOAT, TokenType.STRING):
            self.advance()
            return Const(token.value)
        if token.type is TokenType.KEYWORD and token.value == "null":
            self.advance()
            return Const(None)
        if token.type is TokenType.KEYWORD and token.value in ("true", "false"):
            self.advance()
            return Const(token.value == "true")
        if self.accept_symbol("("):
            expr = self.expression()
            self.expect_symbol(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self.advance().value
            if name.upper() in AGGREGATE_FUNCTIONS and self.current.is_symbol("("):
                return self.aggregate_call(name)
            if self.accept_symbol("."):
                column = self.expect_ident()
                return Name(column, qualifier=name)
            return Name(name)
        self.fail("expected an expression")

    def aggregate_call(self, func):
        self.expect_symbol("(")
        if self.accept_symbol("*"):
            self.expect_symbol(")")
            return FuncCall(func, star=True)
        argument = self.expression()
        self.expect_symbol(")")
        return FuncCall(func, argument=argument)
