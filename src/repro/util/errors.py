"""Exception hierarchy for the WSQ/DSQ reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at the API boundary.  Sub-hierarchies mirror
the architectural layers: storage, SQL front end, planning, execution, and
the virtual-table / asynchronous-iteration machinery.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class StorageError(ReproError):
    """Base class for storage-engine failures (pages, files, buffer pool)."""


class BufferPoolError(StorageError):
    """Buffer pool misuse: no evictable frame, unpinning an unpinned page."""


class CatalogError(StorageError):
    """Unknown or duplicate table/column, schema mismatch on load."""


class SqlSyntaxError(ReproError):
    """Lexical or grammatical error in a SQL string.

    Carries the offending position so REPL users get a caret diagnostic.
    """

    def __init__(self, message, position=None, text=None):
        super().__init__(message)
        self.position = position
        self.text = text

    def diagnostic(self):
        """Return a multi-line message with a caret under the error site."""
        if self.position is None or self.text is None:
            return str(self)
        line_start = self.text.rfind("\n", 0, self.position) + 1
        line_end = self.text.find("\n", self.position)
        if line_end == -1:
            line_end = len(self.text)
        caret = " " * (self.position - line_start) + "^"
        return "{}\n{}\n{}".format(self, self.text[line_start:line_end], caret)


class PlanError(ReproError):
    """Planner failure: unresolvable name, ambiguous column, bad plan shape."""


class BindingError(PlanError):
    """A virtual table's input columns cannot be bound.

    Raised when ``SearchExp``/``T1..Tn`` of a virtual table are not supplied
    by constants or by tables earlier in the join order (the paper's
    Section 3.2 "Informix problem").
    """


class TypeMismatchError(PlanError):
    """An expression combines incompatible value types."""


class ExecutionError(ReproError):
    """Runtime failure inside a query-plan iterator."""


class PlaceholderError(ExecutionError):
    """An operator touched a placeholder value it must not depend on.

    This always indicates a plan-rewrite bug: the ReqSync percolation rules
    (Section 4.5.2) are supposed to keep value-dependent operators above the
    ReqSync that fills the placeholder in.
    """


class QueryDeadlineExceeded(ExecutionError):
    """A query ran out of its end-to-end deadline budget.

    Raised at every deadline checkpoint — registration with the request
    pump, the pre-issue check inside a concurrency slot, the per-attempt
    ``asyncio.wait_for`` bound, and the ReqSync wait loop — so an
    expired query fails *fast* instead of burning pump slots or network
    round trips on an answer nobody is waiting for.  ``deadline`` is the
    originating :class:`repro.serve.deadline.Deadline` (or ``None`` for
    hand-raised instances).
    """

    def __init__(self, message, deadline=None):
        super().__init__(message)
        self.deadline = deadline


class AdmissionRejected(ReproError):
    """The query service refused to run a query (load shedding).

    Typed so callers can distinguish overload from failure and back off:
    ``tenant`` names the budget that was exhausted, ``reason`` is one of
    ``"queue_full"`` / ``"deadline"`` / ``"shutdown"``, and
    ``retry_after`` is the service's estimate (seconds) of when a retry
    has a chance of being admitted.
    """

    def __init__(self, message, tenant=None, reason=None, retry_after=None):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after = retry_after


class VirtualTableError(ReproError):
    """A virtual-table implementation rejected its inputs."""


class WebRequestError(ReproError):
    """Base class for simulated network failures of an external request.

    The paper assumed reliable engines; the resilience layer
    (:mod:`repro.web.faults`, :mod:`repro.asynciter.resilience`)
    deliberately departs from that and models the failures a real DB-IR
    federation sees.  The split below drives retry classification.
    """


class TransientWebError(WebRequestError):
    """A failure worth retrying: 5xx, connection reset, dropped packet."""


class HardWebError(WebRequestError):
    """A failure retries cannot fix: 4xx, malformed expression, auth."""


class EngineOutageError(TransientWebError):
    """The whole destination is down (connection refused / no route)."""


class RequestTimeoutError(TransientWebError):
    """A request exceeded its per-call timeout (a hung connection)."""


class BreakerOpenError(WebRequestError):
    """The circuit breaker for a destination is open: failing fast."""


class CachedFailureError(WebRequestError):
    """A negatively-cached failure was replayed without a network round trip.

    Raised when the result cache holds a recent failure record for a
    request (see :class:`~repro.web.cache.CachePolicy` ``negative_ttl``):
    repeating a request that just failed within the negative-TTL window
    yields the same failure immediately instead of re-issuing the call.
    Deliberately *not* a :class:`TransientWebError` so retry policies
    never spin on a cached outcome.
    """
