"""Deterministic pseudo-randomness helpers.

All stochastic behaviour in the reproduction (corpus generation, latency
jitter, ranking tie-breaks) must be reproducible from a seed, so tests and
benchmarks are stable across runs and machines.  These helpers derive
independent, stable sub-streams from string keys, so adding a new consumer
never perturbs an existing one.
"""

import hashlib
import random

_MASK64 = (1 << 64) - 1


def stable_hash(*parts):
    """Return a stable 64-bit hash of the string representations of *parts*.

    Unlike the built-in ``hash``, this does not vary across interpreter
    invocations (no ``PYTHONHASHSEED`` sensitivity).
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "big") & _MASK64


def derive_rng(seed, *keys):
    """Return a ``random.Random`` seeded from *seed* and a key path.

    Two call sites with different key paths get statistically independent
    streams; the same path always yields the same stream.
    """
    return random.Random(stable_hash(seed, *keys))


def stable_uniform(seed, *keys):
    """Return a deterministic float in [0, 1) keyed by *seed* and *keys*."""
    return stable_hash(seed, *keys) / float(1 << 64)
