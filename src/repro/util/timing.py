"""Small timing helpers used by the benchmark harness and examples."""

import time
from contextlib import contextmanager


class Stopwatch:
    """Accumulates wall-clock time across repeated start/stop cycles."""

    def __init__(self):
        self.elapsed = 0.0
        self._started_at = None

    def start(self):
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self):
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @contextmanager
    def measure(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()


def time_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
