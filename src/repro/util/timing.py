"""Timing primitives shared by profiling, tracing, and the benchmarks.

Everything that measures wall-clock time in this codebase goes through a
:class:`Clock` so that tests (and the simulated-latency world) can swap
in a :class:`VirtualClock` and get *deterministic* timestamps: a trace of
the same workload is then byte-for-byte reproducible, and latency
histograms assert exact values instead of fuzzy bounds.

The default :class:`SystemClock` is a thin veneer over
``time.perf_counter`` — the monotonic, high-resolution counter every
ad-hoc call site used before this module consolidated them.
"""

import time
from contextlib import contextmanager


class Clock:
    """Interface: monotonic seconds since an arbitrary origin."""

    def now(self):
        raise NotImplementedError

    def __call__(self):  # clock() == clock.now(), perf_counter-style
        return self.now()


class SystemClock(Clock):
    """Real wall-clock time via ``time.perf_counter``."""

    def now(self):
        return time.perf_counter()


class VirtualClock(Clock):
    """A manually advanced clock for deterministic tests and traces.

    ``advance(dt)`` moves time forward; ``now()`` never advances on its
    own, so two reads with no ``advance`` between them are equal — the
    property the trace-determinism tests rely on.
    """

    def __init__(self, start=0.0):
        self._now = float(start)

    def now(self):
        return self._now

    def advance(self, seconds):
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now


#: Process-wide default clock.  Components take ``clock=None`` and fall
#: back to this, so one assignment can virtualize a whole engine.
SYSTEM_CLOCK = SystemClock()


def default_clock():
    """The shared :class:`SystemClock` instance."""
    return SYSTEM_CLOCK


def resolve_clock(clock):
    """``clock`` if given, else the shared system clock."""
    return clock if clock is not None else SYSTEM_CLOCK


class Stopwatch:
    """Accumulates wall-clock time across repeated start/stop cycles."""

    def __init__(self, clock=None):
        self.clock = resolve_clock(clock)
        self.elapsed = 0.0
        self._started_at = None

    def start(self):
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = self.clock.now()

    def stop(self):
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += self.clock.now() - self._started_at
        self._started_at = None
        return self.elapsed

    @contextmanager
    def measure(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()


def time_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
