"""Shared utilities: error hierarchy, deterministic RNG helpers, timing."""

from repro.util.errors import (
    BindingError,
    BufferPoolError,
    CatalogError,
    ExecutionError,
    PlaceholderError,
    PlanError,
    ReproError,
    SqlSyntaxError,
    StorageError,
    TypeMismatchError,
    VirtualTableError,
)

__all__ = [
    "BindingError",
    "BufferPoolError",
    "CatalogError",
    "ExecutionError",
    "PlaceholderError",
    "PlanError",
    "ReproError",
    "SqlSyntaxError",
    "StorageError",
    "TypeMismatchError",
    "VirtualTableError",
]
