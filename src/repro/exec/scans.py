"""Leaf scans: stored tables and in-memory row collections."""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError


class TableScan(Operator):
    """Sequential scan of a stored table through the buffer pool."""

    def __init__(self, table, qualifier=None):
        self.table = table
        self.qualifier = qualifier or table.name
        self.schema = table.schema.with_qualifier(self.qualifier)
        self.children = ()
        self._iterator = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._iterator = self.table.scan()

    def next(self):
        if self._iterator is None:
            raise ExecutionError("TableScan.next() before open()")
        return next(self._iterator, None)

    def close(self):
        self._iterator = None

    def label(self):
        return "Scan: {}".format(self.qualifier)


class RowsScan(Operator):
    """Scan over a fixed in-memory row list (tests, VALUES, DSQ internals)."""

    def __init__(self, schema, rows, name="rows"):
        self.schema = schema
        self.rows_data = [tuple(r) for r in rows]
        self.name = name
        self.children = ()
        self._position = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._position = 0

    def next(self):
        if self._position is None:
            raise ExecutionError("RowsScan.next() before open()")
        if self._position >= len(self.rows_data):
            return None
        row = self.rows_data[self._position]
        self._position += 1
        return row

    def close(self):
        self._position = None

    def label(self):
        return "Scan: {} ({} rows)".format(self.name, len(self.rows_data))
