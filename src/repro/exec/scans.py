"""Leaf scans: stored tables and in-memory row collections."""

from array import array

from repro.exec.operator import Operator
from repro.relational.batch import ColumnBatch, RowBatch, type_column
from repro.util.errors import ExecutionError


def _extend_column(dst, src):
    """Append column chunk *src* onto *dst*, degrading typed storage only
    when the incoming chunk can't keep it (e.g. a page with NULLs)."""
    if isinstance(dst, array) and not (
        isinstance(src, array) and src.typecode == dst.typecode
    ):
        dst = list(dst)
    dst.extend(src)
    return dst


class TableScan(Operator):
    """Sequential scan of a stored table through the buffer pool.

    Batch path: rows are pulled page-at-a-time from the heap via
    ``Table.scan_batches()`` and re-chunked to the caller's ``max_rows``.
    In the columnar layout the source is ``Table.scan_column_batches()``
    when available — pages decode straight into typed column vectors, so
    batches reach the operators column-major without a pivot.

    ``partition=(index, total)`` restricts the scan to one contiguous
    run of heap pages (see
    :func:`repro.storage.heap.partition_pages`) — the leaves an
    :class:`~repro.exec.exchange.Exchange` fans a subtree over.  The
    partitions of a table concatenate, in index order, to exactly the
    unpartitioned scan.
    """

    def __init__(self, table, qualifier=None, partition=None):
        self.table = table
        self.qualifier = qualifier or table.name
        self.partition = partition
        self.schema = table.schema.with_qualifier(self.qualifier)
        self.children = ()
        self._iterator = None
        self._batch_iterator = None
        self._pending = []
        self._pending_cols = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        # Unpartitioned scans keep the historical zero-argument call, so
        # duck-typed table stand-ins without a partition kwarg still work.
        self._iterator = (
            self.table.scan()
            if self.partition is None
            else self.table.scan(partition=self.partition)
        )
        self._batch_iterator = None
        self._pending = []
        self._pending_cols = None

    def next(self):
        if self._iterator is None:
            raise ExecutionError("TableScan.next() before open()")
        return next(self._iterator, None)

    def _gather_rows(self, limit):
        """Up to *limit* rows from the page-chunked row source."""
        if self._batch_iterator is None:
            scan_batches = getattr(self.table, "scan_batches", None)
            if scan_batches is None:
                if self.partition is not None:
                    raise ExecutionError(
                        "partitioned scan over a table without scan_batches()"
                    )
                return None
            self._batch_iterator = (
                scan_batches()
                if self.partition is None
                else scan_batches(partition=self.partition)
            )
        rows = self._pending
        while len(rows) < limit:
            chunk = next(self._batch_iterator, None)
            if chunk is None:
                break
            rows.extend(chunk)
        if not rows:
            return []
        if len(rows) > limit:
            self._pending = rows[limit:]
            rows = rows[:limit]
        else:
            self._pending = []
        return rows

    def _next_column_batch(self, limit):
        """Columnar source path: page chunks arrive as column vectors."""
        if self._batch_iterator is None:
            self._batch_iterator = (
                self.table.scan_column_batches()
                if self.partition is None
                else self.table.scan_column_batches(partition=self.partition)
            )
        cols = self._pending_cols
        count = len(cols[0]) if cols else 0
        while count < limit:
            chunk = next(self._batch_iterator, None)
            if chunk is None:
                break
            if not cols:
                cols = list(chunk)
            else:
                cols = [
                    _extend_column(dst, src) for dst, src in zip(cols, chunk)
                ]
            count = len(cols[0]) if cols else 0
        if not count:
            self._pending_cols = None
            return None
        if count > limit:
            self._pending_cols = [col[limit:] for col in cols]
            cols = [col[:limit] for col in cols]
            count = limit
        else:
            self._pending_cols = None
        return ColumnBatch.from_columns(self.schema, cols, count)

    def next_batch(self, max_rows=None):
        if self._iterator is None:
            raise ExecutionError("TableScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        if self.batch_layout == "columnar" and callable(
            getattr(self.table, "scan_column_batches", None)
        ):
            return self._next_column_batch(limit)
        rows = self._gather_rows(limit)
        if rows is None:
            return Operator.next_batch(self, limit)
        if not rows:
            return None
        if self.batch_layout == "columnar":
            return self.make_batch(rows)
        return RowBatch(self.schema, rows)

    def close(self):
        self._iterator = None
        self._batch_iterator = None
        self._pending = []
        self._pending_cols = None

    def label(self):
        if self.partition is not None:
            return "Scan: {} [partition {}/{}]".format(
                self.qualifier, self.partition[0], self.partition[1]
            )
        return "Scan: {}".format(self.qualifier)


class RowsScan(Operator):
    """Scan over a fixed in-memory row list (tests, VALUES, DSQ internals)."""

    def __init__(self, schema, rows, name="rows"):
        self.schema = schema
        self.rows_data = [tuple(r) for r in rows]
        self.name = name
        self.children = ()
        self._position = None
        self._columns = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._position = 0
        # Subclasses may rebuild ``rows_data`` per open (e.g. scans whose
        # rows embed freshly registered calls), so the typed pivot cannot
        # outlive one open/close cycle.
        self._columns = None

    def next(self):
        if self._position is None:
            raise ExecutionError("RowsScan.next() before open()")
        if self._position >= len(self.rows_data):
            return None
        row = self.rows_data[self._position]
        self._position += 1
        return row

    def next_batch(self, max_rows=None):
        if self._position is None:
            raise ExecutionError("RowsScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        start = self._position
        if start >= len(self.rows_data):
            return None
        if self.batch_layout == "columnar":
            # The row list is immutable while the scan is open, so the
            # typed pivot is computed once per open and sliced per batch
            # (array slices stay arrays: no per-batch re-typing).
            if self._columns is None:
                self._columns = [
                    type_column(values, column.type)
                    for values, column in zip(zip(*self.rows_data), self.schema)
                ]
            stop = min(start + limit, len(self.rows_data))
            self._position = stop
            return ColumnBatch.from_columns(
                self.schema,
                [col[start:stop] for col in self._columns],
                stop - start,
            )
        rows = self.rows_data[start : start + limit]
        self._position = start + len(rows)
        return RowBatch(self.schema, rows)

    def close(self):
        self._position = None

    def label(self):
        return "Scan: {} ({} rows)".format(self.name, len(self.rows_data))
