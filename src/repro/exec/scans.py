"""Leaf scans: stored tables and in-memory row collections."""

from repro.exec.operator import Operator
from repro.relational.batch import RowBatch
from repro.util.errors import ExecutionError


class TableScan(Operator):
    """Sequential scan of a stored table through the buffer pool.

    Batch path: rows are pulled page-at-a-time from the heap via
    ``Table.scan_batches()`` and re-chunked to the caller's ``max_rows``.
    """

    def __init__(self, table, qualifier=None):
        self.table = table
        self.qualifier = qualifier or table.name
        self.schema = table.schema.with_qualifier(self.qualifier)
        self.children = ()
        self._iterator = None
        self._batch_iterator = None
        self._pending = []

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._iterator = self.table.scan()
        self._batch_iterator = None
        self._pending = []

    def next(self):
        if self._iterator is None:
            raise ExecutionError("TableScan.next() before open()")
        return next(self._iterator, None)

    def next_batch(self, max_rows=None):
        if self._iterator is None:
            raise ExecutionError("TableScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        if self._batch_iterator is None:
            scan_batches = getattr(self.table, "scan_batches", None)
            if scan_batches is None:
                return Operator.next_batch(self, limit)
            self._batch_iterator = scan_batches()
        rows = self._pending
        while len(rows) < limit:
            chunk = next(self._batch_iterator, None)
            if chunk is None:
                break
            rows.extend(chunk)
        if not rows:
            return None
        if len(rows) > limit:
            self._pending = rows[limit:]
            rows = rows[:limit]
        else:
            self._pending = []
        return RowBatch(self.schema, rows)

    def close(self):
        self._iterator = None
        self._batch_iterator = None
        self._pending = []

    def label(self):
        return "Scan: {}".format(self.qualifier)


class RowsScan(Operator):
    """Scan over a fixed in-memory row list (tests, VALUES, DSQ internals)."""

    def __init__(self, schema, rows, name="rows"):
        self.schema = schema
        self.rows_data = [tuple(r) for r in rows]
        self.name = name
        self.children = ()
        self._position = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._position = 0

    def next(self):
        if self._position is None:
            raise ExecutionError("RowsScan.next() before open()")
        if self._position >= len(self.rows_data):
            return None
        row = self.rows_data[self._position]
        self._position += 1
        return row

    def next_batch(self, max_rows=None):
        if self._position is None:
            raise ExecutionError("RowsScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        start = self._position
        if start >= len(self.rows_data):
            return None
        rows = self.rows_data[start : start + limit]
        self._position = start + len(rows)
        return RowBatch(self.schema, rows)

    def close(self):
        self._position = None

    def label(self):
        return "Scan: {} ({} rows)".format(self.name, len(self.rows_data))
