"""Index scan: B+tree range access followed by heap fetches."""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError


class IndexScan(Operator):
    """Scan one table through a secondary index.

    Emits rows whose index key falls within ``[low, high]`` (either bound
    optional, inclusivity per flag), in key order.  Rows are fetched from
    the heap by RID.
    """

    def __init__(
        self,
        table,
        index,
        qualifier=None,
        low=None,
        high=None,
        include_low=True,
        include_high=True,
    ):
        self.table = table
        self.index = index
        self.qualifier = qualifier or table.name
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.schema = table.schema.with_qualifier(self.qualifier)
        self.children = ()
        self._iterator = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._iterator = self.index.range_scan(
            self.low, self.high, self.include_low, self.include_high
        )

    def next(self):
        if self._iterator is None:
            raise ExecutionError("IndexScan.next() before open()")
        for _, rid in self._iterator:
            row = self.table.read(rid)
            if row is not None:
                return row
        return None

    def next_batch(self, max_rows=None):
        if self._iterator is None:
            raise ExecutionError("IndexScan.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        read = self.table.read
        rows = []
        append = rows.append
        for _, rid in self._iterator:
            row = read(rid)
            if row is not None:
                append(row)
                if len(rows) >= limit:
                    break
        if not rows:
            return None
        return self.make_batch(rows)

    def close(self):
        self._iterator = None

    def label(self):
        if self.low is not None and self.low == self.high:
            bounds = "= {!r}".format(self.low)
        else:
            parts = []
            if self.low is not None:
                parts.append(
                    "{} {!r}".format(">=" if self.include_low else ">", self.low)
                )
            if self.high is not None:
                parts.append(
                    "{} {!r}".format("<=" if self.include_high else "<", self.high)
                )
            bounds = " and ".join(parts) or "full"
        return "IndexScan: {} ({} {})".format(
            self.qualifier, self.index.column_name, bounds
        )
