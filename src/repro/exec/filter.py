"""Selection."""

from repro.exec.operator import Operator
from repro.relational.expr import compile_batch_predicate, compile_column_predicate


class Filter(Operator):
    """Emit child rows for which the predicate evaluates to True.

    SQL semantics: rows whose predicate is False *or NULL* are dropped.
    The predicate *depends on* the attributes it reads, so evaluating it
    over a placeholder raises — by the paper's clash rule 1, ReqSync
    percolation must pull this operator above the ReqSync (or vice versa)
    whenever the predicate touches placeholder-carrying columns.

    Batch path: the predicate is compiled once per ``open()`` and the
    surviving rows are expressed as a *selection vector* over the child
    batch — no row copying.  In the columnar layout the compiled form is
    a column kernel (:func:`compile_column_predicate`) that emits the
    selection straight from typed column vectors; the row layout keeps
    the tuple-at-a-time evaluator.
    """

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.children = (child,)
        self._batch_predicate = None
        self._column_predicate = None

    def open(self, bindings=None):
        # Pass-through: a Filter may sit between a dependent join and the
        # scan it parameterizes (e.g. after percolation rewrites).
        self.child.open(bindings)
        if self.batch_layout == "columnar":
            self._column_predicate = compile_column_predicate(self.predicate)
        else:
            self._batch_predicate = compile_batch_predicate(self.predicate)

    def next(self):
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.predicate.eval(row) is True:
                return row

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        if self.batch_layout == "columnar":
            predicate = self._column_predicate
            if predicate is None:
                predicate = compile_column_predicate(self.predicate)
                self._column_predicate = predicate
            while True:
                batch = self.child.next_batch(limit)
                if batch is None:
                    return None
                selection = predicate(batch)
                if not selection:
                    continue  # whole batch filtered out; keep pulling
                if len(selection) == len(batch):
                    return batch  # nothing dropped: pass the batch through
                return batch.narrow(selection)
        predicate = self._batch_predicate
        if predicate is None:
            predicate = compile_batch_predicate(self.predicate)
            self._batch_predicate = predicate
        while True:
            batch = self.child.next_batch(limit)
            if batch is None:
                return None
            selection = predicate(batch.to_rows())
            if not selection:
                continue  # whole batch filtered out; keep pulling
            if len(selection) == len(batch):
                return batch  # nothing dropped: pass the batch through
            return batch.narrow(selection)

    def close(self):
        self.child.close()
        self._batch_predicate = None
        self._column_predicate = None

    def label(self):
        return "Select: {}".format(self.predicate.sql(self.schema))
