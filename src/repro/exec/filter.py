"""Selection."""

from repro.exec.operator import Operator


class Filter(Operator):
    """Emit child rows for which the predicate evaluates to True.

    SQL semantics: rows whose predicate is False *or NULL* are dropped.
    The predicate *depends on* the attributes it reads, so evaluating it
    over a placeholder raises — by the paper's clash rule 1, ReqSync
    percolation must pull this operator above the ReqSync (or vice versa)
    whenever the predicate touches placeholder-carrying columns.
    """

    def __init__(self, child, predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.children = (child,)

    def open(self, bindings=None):
        # Pass-through: a Filter may sit between a dependent join and the
        # scan it parameterizes (e.g. after percolation rewrites).
        self.child.open(bindings)

    def next(self):
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.predicate.eval(row) is True:
                return row

    def close(self):
        self.child.close()

    def label(self):
        return "Select: {}".format(self.predicate.sql(self.schema))
