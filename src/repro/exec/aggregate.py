"""Hash aggregation (GROUP BY and plain aggregates).

Aggregation is the paper's clash rule 3: it "requires an accurate tally of
incoming tuples", so it must sit above any ReqSync that could cancel or
proliferate tuples.  Its input expressions raise on placeholders.
"""

from repro.exec.operator import Operator
from repro.relational.expr import compile_column_eval
from repro.relational.placeholder import require_concrete
from repro.relational.types import DataType
from repro.util.errors import ExecutionError, TypeMismatchError

AGG_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class AggregateSpec:
    """One aggregate in the output: function + input expression (or *)."""

    __slots__ = ("func", "expr", "star")

    def __init__(self, func, expr=None, star=False):
        func = func.upper()
        if func not in AGG_FUNCTIONS:
            raise TypeMismatchError("unknown aggregate {!r}".format(func))
        if star and func != "COUNT":
            raise TypeMismatchError("* argument is only valid for COUNT")
        self.func = func
        self.expr = expr
        self.star = star

    def result_type(self, schema):
        if self.func == "COUNT":
            return DataType.INT
        if self.func == "AVG":
            return DataType.FLOAT
        return self.expr.result_type(schema)

    def sql(self, schema=None):
        inner = "*" if self.star else self.expr.sql(schema)
        return "{}({})".format(self.func, inner)


class _Accumulator:
    __slots__ = ("func", "count", "total", "best")

    def __init__(self, func):
        self.func = func
        self.count = 0
        self.total = 0
        self.best = None

    def add(self, value):
        if self.func == "COUNT":
            if value is not _STAR and value is None:
                return
            self.count += 1
            return
        if value is None:  # SQL aggregates skip NULLs
            return
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            self.best = value if self.best is None or value < self.best else self.best
        elif self.func == "MAX":
            self.best = value if self.best is None or value > self.best else self.best

    def result(self):
        if self.func == "COUNT":
            return self.count
        if self.count == 0:
            return None  # SUM/AVG/MIN/MAX of no rows is NULL
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count
        return self.best


_STAR = object()


class Aggregate(Operator):
    """GROUP BY *group_exprs* computing *specs*.

    Output rows are the group keys followed by the aggregate values.  With
    no group expressions, emits exactly one row (even over empty input,
    per SQL).
    """

    def __init__(self, child, group_exprs, specs, schema):
        assert len(schema) == len(group_exprs) + len(specs)
        self.child = child
        self.group_exprs = list(group_exprs)
        self.specs = list(specs)
        self.schema = schema
        self.children = (child,)
        self._results = None
        self._position = 0

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.child.open()
        groups = {}
        order = []
        # Columnar layout: gather group keys and aggregate inputs as
        # whole columns per batch (kernel-compiled), then accumulate from
        # the vectors — no per-row expression-tree dispatch.
        columnar = self.batch_layout == "columnar"
        if columnar:
            group_evals = [compile_column_eval(e) for e in self.group_exprs]
            spec_evals = [
                None if s.star else compile_column_eval(s.expr) for s in self.specs
            ]
        while True:
            batch = self.child.next_batch(self.batch_size)
            if batch is None:
                break
            if columnar:
                key_columns = [evaluate(batch) for evaluate in group_evals]
                input_columns = [
                    evaluate(batch) if evaluate is not None else None
                    for evaluate in spec_evals
                ]
                for i in range(len(batch)):
                    key = tuple(
                        require_concrete(column[i], "GROUP BY")
                        for column in key_columns
                    )
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [_Accumulator(s.func) for s in self.specs]
                        groups[key] = accumulators
                        order.append(key)
                    for spec, acc, column in zip(
                        self.specs, accumulators, input_columns
                    ):
                        if column is None:
                            acc.add(_STAR)
                        else:
                            acc.add(require_concrete(column[i], spec.sql()))
                continue
            for row in batch:
                key = tuple(
                    require_concrete(expr.eval(row), "GROUP BY")
                    for expr in self.group_exprs
                )
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = [_Accumulator(s.func) for s in self.specs]
                    groups[key] = accumulators
                    order.append(key)
                for spec, acc in zip(self.specs, accumulators):
                    if spec.star:
                        acc.add(_STAR)
                    else:
                        acc.add(require_concrete(spec.expr.eval(row), spec.sql()))
        self.child.close()
        if not self.group_exprs and not groups:
            groups[()] = [_Accumulator(s.func) for s in self.specs]
            order.append(())
        self._results = [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]
        self._position = 0

    def next(self):
        if self._results is None:
            raise ExecutionError("Aggregate.next() before open()")
        if self._position >= len(self._results):
            return None
        row = self._results[self._position]
        self._position += 1
        return row

    def next_batch(self, max_rows=None):
        if self._results is None:
            raise ExecutionError("Aggregate.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        start = self._position
        if start >= len(self._results):
            return None
        rows = self._results[start : start + limit]
        self._position = start + len(rows)
        return self.make_batch(rows)

    def close(self):
        self._results = None
        self._position = 0

    def label(self):
        parts = [spec.sql(self.child.schema) for spec in self.specs]
        if self.group_exprs:
            parts.append(
                "Group By {}".format(
                    ", ".join(e.sql(self.child.schema) for e in self.group_exprs)
                )
            )
        return "Aggregate: {}".format("; ".join(parts))
