"""Intra-query parallelism: the Exchange operator family.

:class:`Exchange` fans one logical subtree out over N *partition*
subtrees (each typically rooted at a partitioned
:class:`~repro.exec.scans.TableScan`), runs them on worker threads, and
re-merges their batches behind the unchanged dual-protocol operator
contract — consumers cannot tell an Exchange from the sequential
subtree it replaced.

Determinism: partitions are *contiguous* page ranges and the consumer
emits them **partition-major** (all of partition 0, then 1, ...), so the
output row order equals the sequential scan's storage order exactly.
Workers still run concurrently — partition k+1's batches accumulate in
its bounded queue while partition k drains.

:class:`MergeExchange` is the order-preserving variant used under
``ORDER BY``: each partition subtree is a per-partition ``Sort``, and
the consumer k-way-merges the sorted streams with the Sort comparator
plus a partition-index tie-break.  Because partitions are contiguous
and ``Sort`` is stable, that merge reproduces the global stable sort
bit-for-bit.

Lifecycle: ``open()`` spawns one worker per partition; ``close()`` (or
an early close from ``Limit``) signals stop, drains the queues so no
worker stays blocked on a full queue, and joins every thread — an
Exchange never leaks a worker, and re-``open()`` after ``close()``
starts a fresh generation.  A worker failure is carried to the consumer
and re-raised from ``next_batch()`` after the other workers are torn
down.
"""

import os
import queue
import threading

from repro.exec.operator import BatchOperator
from repro.exec.sort import _compare_values
from repro.util.errors import ExecutionError, ReproError

#: Batches buffered per partition before its worker blocks (backpressure).
QUEUE_DEPTH = 4

#: Poll granularity for stoppable blocking queue ops.
_TICK = 0.05


def default_parallelism():
    """Worker count from ``$REPRO_PARALLELISM`` (default 1 — sequential)."""
    raw = os.environ.get("REPRO_PARALLELISM")
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ReproError(
            "REPRO_PARALLELISM must be a positive integer, got {!r}".format(raw)
        )
    if value < 1:
        raise ReproError(
            "REPRO_PARALLELISM must be a positive integer, got {!r}".format(raw)
        )
    return value


class _EndOfStream:
    __slots__ = ()


class _WorkerError:
    __slots__ = ("error",)

    def __init__(self, error):
        self.error = error


_EOS = _EndOfStream()


class Exchange(BatchOperator):
    """Partition-major fan-out/fan-in over worker threads.

    *partitions* are the per-partition subtrees; they must share one
    schema.  Each runs its full ``open -> next_batch* -> close``
    lifecycle on its own worker thread, feeding a bounded queue the
    consumer drains in partition order.
    """

    def __init__(self, partitions):
        super().__init__()
        partitions = list(partitions)
        if not partitions:
            raise ExecutionError("Exchange needs at least one partition")
        self.partitions = partitions
        self.schema = partitions[0].schema
        self.children = tuple(partitions)
        self._queues = None
        self._workers = None
        self._stop = None
        self._current = 0
        self._pending_rows = None

    # -- lifecycle ------------------------------------------------------------

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._shutdown()  # tolerate open() after an aborted run
        self._reset_drain()
        self._stop = threading.Event()
        self._queues = [queue.Queue(maxsize=QUEUE_DEPTH) for _ in self.partitions]
        self._current = 0
        self._pending_rows = None
        self._workers = []
        for child, chute in zip(self.partitions, self._queues):
            worker = threading.Thread(
                target=self._run_partition,
                args=(child, chute, self._stop),
                name="exchange-worker",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def close(self):
        self._shutdown()
        self._reset_drain()
        self._current = 0
        self._pending_rows = None

    def _shutdown(self):
        """Stop, drain, and join every worker of the current generation."""
        if self._workers is None:
            return
        self._stop.set()
        workers, queues = self._workers, self._queues
        self._workers = None
        self._queues = None
        for worker in workers:
            while worker.is_alive():
                # Keep the queues empty so a worker blocked on put() can
                # notice the stop flag and exit.
                for chute in queues:
                    try:
                        while True:
                            chute.get_nowait()
                    except queue.Empty:
                        pass
                worker.join(timeout=_TICK)

    # -- the worker -----------------------------------------------------------

    def _run_partition(self, child, chute, stop):
        try:
            child.open()
            try:
                while not stop.is_set():
                    batch = child.next_batch(self.batch_size)
                    if batch is None:
                        break
                    if not self._put(chute, batch, stop):
                        return
            finally:
                child.close()
            self._put(chute, _EOS, stop)
        except Exception as exc:  # noqa: BLE001 - carried to the consumer
            self._put(chute, _WorkerError(exc), stop)

    @staticmethod
    def _put(chute, item, stop):
        while not stop.is_set():
            try:
                chute.put(item, timeout=_TICK)
                return True
            except queue.Full:
                continue
        return False

    # -- the consumer ---------------------------------------------------------

    def next_batch(self, max_rows=None):
        if self._queues is None:
            raise ExecutionError("Exchange.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        if self._pending_rows:
            rows = self._pending_rows[:limit]
            self._pending_rows = self._pending_rows[limit:] or None
            return self.make_batch(rows)
        while self._current < len(self.partitions):
            item = self._take(self._current)
            if item is _EOS:
                self._current += 1
                continue
            if isinstance(item, _WorkerError):
                self._shutdown()
                raise item.error
            if len(item) <= limit:
                return item
            rows = item.to_rows()
            self._pending_rows = rows[limit:]
            return self.make_batch(rows[:limit])
        return None

    def _take(self, index):
        chute = self._queues[index]
        worker = self._workers[index]
        while True:
            try:
                return chute.get(timeout=_TICK)
            except queue.Empty:
                if not worker.is_alive():
                    # One more non-blocking look: the worker may have
                    # produced its terminal item between the timeout and
                    # the liveness check.
                    try:
                        return chute.get_nowait()
                    except queue.Empty:
                        self._shutdown()
                        raise ExecutionError(
                            "Exchange worker for partition {} died without "
                            "reporting end of stream".format(index)
                        )

    def label(self):
        return "Exchange: {} partitions".format(len(self.partitions))


class MergeExchange(Exchange):
    """Order-preserving Exchange: k-way merge of sorted partitions.

    *partitions* must each emit rows already ordered by *keys* (a list
    of ``(BoundExpr, descending)`` pairs — per-partition ``Sort``
    subtrees).  Rows that compare equal merge lowest-partition-first,
    which — partitions being contiguous ranges of a stable sort's input
    — reproduces the global stable order exactly.
    """

    def __init__(self, partitions, keys):
        super().__init__(partitions)
        self.keys = list(keys)
        self._heads = None
        self._exhausted = None

    def open(self, bindings=None):
        super().open(bindings)
        self._heads = [None] * len(self.partitions)  # (key_tuple, row) or None
        self._exhausted = [False] * len(self.partitions)
        self._buffers = [[] for _ in self.partitions]  # undrained rows per part

    def close(self):
        super().close()
        self._heads = None
        self._exhausted = None
        self._buffers = None

    def _refill(self, index):
        """Ensure partition *index* has a decorated head row (or is done)."""
        if self._heads[index] is not None or self._exhausted[index]:
            return
        buffer = self._buffers[index]
        while not buffer:
            item = self._take(index)
            if item is _EOS:
                self._exhausted[index] = True
                return
            if isinstance(item, _WorkerError):
                self._shutdown()
                raise item.error
            buffer.extend(item.to_rows())
        row = buffer.pop(0)
        self._heads[index] = (
            tuple(expr.eval(row) for expr, _ in self.keys),
            row,
        )

    def _pop_min(self):
        """The next row in global order, or ``None`` when all are done."""
        best = None
        for index in range(len(self.partitions)):
            self._refill(index)
            head = self._heads[index]
            if head is None:
                continue
            if best is None or self._before(head[0], self._heads[best][0]):
                best = index
        if best is None:
            return None
        row = self._heads[best][1]
        self._heads[best] = None
        return row

    def _before(self, key_a, key_b):
        """Does *key_a* sort strictly before *key_b*?  (Ties keep the
        earlier partition, because the scan above visits partitions in
        ascending index order.)"""
        for i, (_, descending) in enumerate(self.keys):
            result = _compare_values(key_a[i], key_b[i])
            if result != 0:
                return (result > 0) if descending else (result < 0)
        return False

    def next_batch(self, max_rows=None):
        if self._queues is None:
            raise ExecutionError("MergeExchange.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        rows = []
        while len(rows) < limit:
            row = self._pop_min()
            if row is None:
                break
            rows.append(row)
        if not rows:
            return None
        return self.make_batch(rows)

    def label(self):
        rendered = ", ".join(
            "{}{}".format(expr.sql(self.schema), " Desc" if descending else "")
            for expr, descending in self.keys
        )
        return "MergeExchange: {} ({} partitions)".format(
            rendered, len(self.partitions)
        )
