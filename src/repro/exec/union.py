"""Bag union.

The paper's percolation discussion uses exactly this rewrite: a clashing
set-union is replaced by a *non-clashing* bag union with a ``Select
Distinct`` above it, letting ReqSync rise through the union.
"""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError


class UnionAll(Operator):
    """Concatenate the rows of two schema-compatible children."""

    def __init__(self, left, right):
        if len(left.schema) != len(right.schema):
            raise ExecutionError("UNION arms have different arity")
        self.left = left
        self.right = right
        self.schema = left.schema
        self.children = (left, right)
        self._stage = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._stage = 0

    def next(self):
        if self._stage is None:
            raise ExecutionError("UnionAll.next() before open()")
        if self._stage == 2:
            return None
        if self._stage == 0:
            row = self.left.next()
            if row is not None:
                return row
            self.left.close()
            self.right.open()
            self._stage = 1
        row = self.right.next()
        if row is None:
            self.right.close()
            self._stage = 2
        return row

    def next_batch(self, max_rows=None):
        if self._stage is None:
            raise ExecutionError("UnionAll.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        if self._stage == 2:
            return None
        if self._stage == 0:
            batch = self.left.next_batch(limit)
            if batch is not None:
                return batch
            self.left.close()
            self.right.open()
            self._stage = 1
        batch = self.right.next_batch(limit)
        if batch is None:
            self.right.close()
            self._stage = 2
            return None
        # Re-tag with the union's (left-derived) schema (zero-copy in
        # either layout).
        return batch.with_schema(self.schema)

    def close(self):
        if self._stage == 0:
            self.left.close()
        elif self._stage == 1:
            self.right.close()
        self._stage = None

    def label(self):
        return "Union All"
