"""Base operator contract and execution helpers."""

from repro.util.errors import ExecutionError


class Operator:
    """Base class for all physical query-plan operators.

    Lifecycle: ``open() -> next()* -> close()``; operators are re-openable
    after ``close()`` (nested-loop joins rely on this).  ``next()`` returns
    a row tuple or ``None`` at end of stream.

    ``open(bindings)``: only operators that sit on the inner side of a
    dependent join accept a bindings dict (external virtual-table scans,
    and pass-through operators that forward it).  Everything else must be
    opened with ``bindings=None``.
    """

    #: Subclasses set these in __init__.
    schema = None
    children = ()

    def open(self, bindings=None):
        raise NotImplementedError

    def next(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------

    def label(self):
        """One-line description used by plan explanation."""
        return type(self).__name__

    def explain(self, indent=0):
        """Nested textual rendering of the plan tree."""
        lines = ["{}{}".format("  " * indent, self.label())]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _reject_bindings(self, bindings):
        if bindings:
            raise ExecutionError(
                "{} does not accept dependent-join bindings".format(type(self).__name__)
            )


def execute(plan, bindings=None):
    """Open *plan*, yield every row, and close it (even on error)."""
    plan.open(bindings)
    try:
        while True:
            row = plan.next()
            if row is None:
                return
            yield row
    finally:
        plan.close()


def collect(plan):
    """Run *plan* to completion and return all rows as a list."""
    return list(execute(plan))
