"""Base operator contract and execution helpers.

Dual-protocol Volcano model
---------------------------

Every operator supports two pull protocols over one ``open()``/``close()``
lifecycle:

- **row-at-a-time** (the seed contract): ``next()`` returns one row tuple
  or ``None`` at end of stream;
- **batch-at-a-time** (the primary path): ``next_batch(max_rows)``
  returns a :class:`~repro.relational.batch.RowBatch` of 1..max_rows rows
  or ``None`` at end of stream.  It never returns an empty batch.

The base class provides an exact-compatibility shim in each direction, so
an operator only has to implement one protocol natively:

- ``Operator.next_batch()`` (the default) adapts a legacy ``next()``
  implementation by looping it up to ``max_rows`` times — third-party
  and test operators keep working unchanged;
- :class:`BatchOperator` provides a ``next()`` that drains an internal
  buffer refilled from ``next_batch()``, for operators whose native
  protocol is the batch one.

The two protocols must not be interleaved within a single execution of
one plan (``open .. close``); switching requires a re-open.  With
``max_rows=1`` the batch path degenerates to exactly the row-at-a-time
schedule: one child pull, one row, identical side-effect order.

``batch_size`` is a per-operator attribute (class default
:func:`~repro.relational.batch.default_batch_size`, i.e. 256 or the
``REPRO_BATCH_SIZE`` environment override); engines stamp their
configured size over a whole plan with :func:`set_batch_size`.
``batch_layout`` works the same way: ``"columnar"`` (the default, or the
``REPRO_BATCH_LAYOUT`` override) makes operators produce
:class:`~repro.relational.batch.ColumnBatch` chunks and take their
column-kernel fast paths; ``"row"`` keeps the original
:class:`~repro.relational.batch.RowBatch` row-of-tuples path.  The two
layouts are semantically identical — :func:`set_batch_layout` stamps the
engine's choice over a plan.
"""

from contextlib import contextmanager

from repro.relational.batch import (
    BATCH_LAYOUTS,
    ColumnBatch,
    RowBatch,
    default_batch_layout,
    default_batch_size,
)
from repro.util.errors import ExecutionError


class Operator:
    """Base class for all physical query-plan operators.

    Lifecycle: ``open() -> (next()* | next_batch()*) -> close()``;
    operators are re-openable after ``close()`` (nested-loop joins rely
    on this).  ``next()`` returns a row tuple or ``None`` at end of
    stream; ``next_batch()`` returns a non-empty
    :class:`~repro.relational.batch.RowBatch` or ``None``.

    ``open(bindings)``: only operators that sit on the inner side of a
    dependent join accept a bindings dict (external virtual-table scans,
    and pass-through operators that forward it).  Everything else must be
    opened with ``bindings=None``.
    """

    #: Subclasses set these in __init__.
    schema = None
    children = ()

    #: Default batch granularity for ``next_batch(max_rows=None)`` and
    #: for internal child pulls; engines override per plan via
    #: :func:`set_batch_size`.
    batch_size = default_batch_size()

    #: Which batch container this operator emits (``"columnar"`` /
    #: ``"row"``); engines override per plan via :func:`set_batch_layout`.
    batch_layout = default_batch_layout()

    def make_batch(self, rows):
        """Wrap dense *rows* in this operator's configured batch layout."""
        if self.batch_layout == "columnar":
            return ColumnBatch.from_rows(self.schema, rows)
        return RowBatch(self.schema, rows)

    def open(self, bindings=None):
        raise NotImplementedError

    def next(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    def next_batch(self, max_rows=None):
        """Return a batch of up to *max_rows* rows, or ``None`` at EOS.

        Default adapter over a row-native ``next()`` — exact row order
        and side-effect schedule, just grouped.
        """
        limit = max_rows if max_rows is not None else self.batch_size
        next_row = self.next
        rows = []
        append = rows.append
        for _ in range(limit):
            row = next_row()
            if row is None:
                break
            append(row)
        if not rows:
            return None
        return self.make_batch(rows)

    # -- conveniences ---------------------------------------------------------

    def label(self):
        """One-line description used by plan explanation."""
        return type(self).__name__

    def explain(self, indent=0, annotate=None):
        """Nested textual rendering of the plan tree.

        *annotate* is an optional callback ``operator -> str``; a
        non-empty return value is appended to that operator's line (the
        unified renderer behind cost-annotated explains — see
        :meth:`repro.plan.cost.CostModel.annotated_explain`).
        """
        line = "{}{}".format("  " * indent, self.label())
        if annotate is not None:
            extra = annotate(self)
            if extra:
                line = "{}  [{}]".format(line, extra)
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1, annotate))
        return "\n".join(lines)

    def _reject_bindings(self, bindings):
        if bindings:
            raise ExecutionError(
                "{} does not accept dependent-join bindings".format(type(self).__name__)
            )


class BatchOperator(Operator):
    """Base for operators whose *native* protocol is ``next_batch()``.

    Provides the row-compatibility shim: ``next()`` drains an internal
    buffer refilled one batch at a time (batches of ``batch_size`` rows,
    so a row-driven consumer still amortizes the per-batch work).
    Subclasses must call :meth:`_reset_drain` from ``open()`` and
    ``close()``.
    """

    def __init__(self):
        self._drain_rows = None
        self._drain_pos = 0

    def _reset_drain(self):
        self._drain_rows = None
        self._drain_pos = 0

    def next(self):
        rows = self._drain_rows
        if rows is not None and self._drain_pos < len(rows):
            row = rows[self._drain_pos]
            self._drain_pos += 1
            return row
        batch = self.next_batch(self.batch_size)
        if batch is None:
            self._reset_drain()
            return None
        rows = batch.to_rows()
        self._drain_rows = rows
        self._drain_pos = 1
        return rows[0]


def set_batch_size(plan, batch_size):
    """Stamp *batch_size* over every operator in *plan* (returns *plan*).

    Walks ``children`` plus any ``inner`` wrapper attribute (profiled
    plans), so the whole tree pulls with one granularity.
    """
    if batch_size is None:
        return plan
    if batch_size < 1:
        raise ExecutionError("batch_size must be >= 1, got {!r}".format(batch_size))
    plan.batch_size = batch_size
    inner = getattr(plan, "inner", None)
    if inner is not None:
        set_batch_size(inner, batch_size)
    for child in plan.children:
        set_batch_size(child, batch_size)
    return plan


def set_batch_layout(plan, batch_layout):
    """Stamp *batch_layout* over every operator in *plan* (returns *plan*).

    Same traversal as :func:`set_batch_size` (``children`` plus ``inner``
    wrappers), so one plan never mixes batch containers mid-tree.
    """
    if batch_layout is None:
        return plan
    if batch_layout not in BATCH_LAYOUTS:
        raise ExecutionError(
            "batch_layout must be one of {}, got {!r}".format(
                "/".join(BATCH_LAYOUTS), batch_layout
            )
        )
    plan.batch_layout = batch_layout
    inner = getattr(plan, "inner", None)
    if inner is not None:
        set_batch_layout(inner, batch_layout)
    for child in plan.children:
        set_batch_layout(child, batch_layout)
    return plan


@contextmanager
def open_plan(plan, bindings=None):
    """Context manager driving the ``open``/``close`` lifecycle of *plan*.

    This is how engines must run plans: an abandoned ``execute()``
    generator only closes its plan at GC time, which can leak pump
    registrations from an ``AEVScan`` when the consumer ``break``s early.
    ``close()`` is exception-safe even when ``open()`` itself failed
    after partially opening children (the partial state is torn down
    best-effort before the original error propagates).
    """
    try:
        plan.open(bindings)
    except BaseException:
        # open() may have opened some children (and registered external
        # calls) before failing; close what we can, keep the real error.
        try:
            plan.close()
        except Exception:  # noqa: BLE001 - teardown must not mask open()'s error
            pass
        raise
    try:
        yield plan
    finally:
        plan.close()


def execute(plan, bindings=None):
    """Open *plan*, yield every row, and close it (even on error).

    Prefer :func:`open_plan` (or fully consuming this generator): if the
    consumer abandons the generator mid-stream, ``close()`` only runs
    when the generator is finalized.
    """
    with open_plan(plan, bindings):
        while True:
            row = plan.next()
            if row is None:
                return
            yield row


def execute_batches(plan, batch_size=None, bindings=None):
    """Open *plan*, yield :class:`RowBatch` chunks, and close it.

    The plan is driven through the batch protocol with *batch_size*
    (``None`` = the plan's own ``batch_size``).  Same abandonment caveat
    as :func:`execute` — engines wrap consumption in :func:`open_plan`.
    """
    with open_plan(plan, bindings):
        while True:
            batch = plan.next_batch(batch_size)
            if batch is None:
                return
            yield batch


def collect(plan):
    """Run *plan* to completion and return all rows as a list."""
    return list(execute(plan))


def collect_batches(plan, batch_size=None):
    """Run *plan* through the batch protocol; returns all rows as a list."""
    rows = []
    for batch in execute_batches(plan, batch_size):
        rows.extend(batch)
    return rows
