"""Duplicate elimination."""

from repro.exec.operator import Operator
from repro.relational.placeholder import require_concrete


class Distinct(Operator):
    """Hash-based duplicate elimination.

    Distinct must examine complete tuples (the paper classifies it with
    the existential clash rule: duplicate elimination over placeholders
    would be wrong), so it checks every value it hashes.
    """

    def __init__(self, child):
        self.child = child
        self.schema = child.schema
        self.children = (child,)
        self._seen = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.child.open()
        self._seen = set()

    def next(self):
        while True:
            row = self.child.next()
            if row is None:
                return None
            key = tuple(require_concrete(v, "DISTINCT") for v in row)
            if key not in self._seen:
                self._seen.add(key)
                return row

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        seen = self._seen
        while True:
            batch = self.child.next_batch(limit)
            if batch is None:
                return None
            selection = []
            keep = selection.append
            for i, row in enumerate(batch.to_rows()):
                key = tuple(require_concrete(v, "DISTINCT") for v in row)
                if key not in seen:
                    seen.add(key)
                    keep(i)
            if not selection:
                continue  # whole batch duplicated; keep pulling
            if len(selection) == len(batch):
                return batch
            return batch.narrow(selection)

    def close(self):
        self.child.close()
        self._seen = None

    def label(self):
        return "Distinct"
