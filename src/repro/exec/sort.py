"""Sorting (full materialization, stable)."""

import functools

from repro.exec.operator import Operator
from repro.relational.expr import compile_column_eval
from repro.util.errors import ExecutionError


def _compare_values(a, b):
    """SQL-ish comparison with NULLs last (ascending)."""
    if a is None and b is None:
        return 0
    if a is None:
        return 1
    if b is None:
        return -1
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class Sort(Operator):
    """ORDER BY: materialize the child, sort by the key expressions.

    Key evaluation depends on attribute values, so a placeholder in a sort
    key raises — ReqSync must sit below any Sort over its attributes (the
    paper's Figure 3 plan has exactly this shape).
    """

    def __init__(self, child, keys):
        # keys: list of (BoundExpr, descending) pairs.
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema
        self.children = (child,)
        self._buffer = None
        self._position = 0

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.child.open()
        # Columnar layout: extract each key as one column gather per
        # batch (kernel-compiled) instead of a per-row tuple build.
        evaluators = None
        if self.batch_layout == "columnar" and self.keys:
            evaluators = [compile_column_eval(expr) for expr, _ in self.keys]
        decorated = []
        while True:
            batch = self.child.next_batch(self.batch_size)
            if batch is None:
                break
            if evaluators is not None:
                key_columns = [evaluate(batch) for evaluate in evaluators]
                decorated.extend(zip(zip(*key_columns), batch.to_rows()))
            else:
                decorated.extend(
                    (tuple(expr.eval(row) for expr, _ in self.keys), row)
                    for row in batch
                )
        self.child.close()
        comparator = self._make_comparator()
        decorated.sort(key=functools.cmp_to_key(comparator))
        self._buffer = [row for _, row in decorated]
        self._position = 0

    def _make_comparator(self):
        directions = [descending for _, descending in self.keys]

        def compare(a, b):
            for i, descending in enumerate(directions):
                result = _compare_values(a[0][i], b[0][i])
                if result != 0:
                    return -result if descending else result
            return 0

        return compare

    def next(self):
        if self._buffer is None:
            raise ExecutionError("Sort.next() before open()")
        if self._position >= len(self._buffer):
            return None
        row = self._buffer[self._position]
        self._position += 1
        return row

    def next_batch(self, max_rows=None):
        if self._buffer is None:
            raise ExecutionError("Sort.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        start = self._position
        if start >= len(self._buffer):
            return None
        rows = self._buffer[start : start + limit]
        self._position = start + len(rows)
        return self.make_batch(rows)

    def close(self):
        self._buffer = None
        self._position = 0

    def label(self):
        rendered = ", ".join(
            "{}{}".format(expr.sql(self.schema), " Desc" if descending else "")
            for expr, descending in self.keys
        )
        return "Sort: {}".format(rendered)
