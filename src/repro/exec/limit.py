"""LIMIT."""

from repro.exec.operator import Operator


class Limit(Operator):
    """Emit at most *count* rows from the child."""

    def __init__(self, child, count):
        self.child = child
        self.count = count
        self.schema = child.schema
        self.children = (child,)
        self._emitted = 0

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.child.open()
        self._emitted = 0

    def next(self):
        if self._emitted >= self.count:
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        return row

    def close(self):
        self.child.close()

    def label(self):
        return "Limit: {}".format(self.count)
