"""LIMIT."""

from repro.exec.operator import Operator


class Limit(Operator):
    """Emit at most *count* rows from the child.

    Early termination: once the quota is reached the child subtree is
    closed *proactively*, so resources held below (buffer-pool pins,
    pending external-call registrations in an ``AEVScan``) are released
    without waiting for the consumer to finish the plan.  ``close()``
    stays idempotent with respect to that early close, and ``open()``
    re-arms the operator for re-execution.

    Batch path: the child is pulled with ``min(max_rows, remaining)`` so
    a batch never overshoots the quota.
    """

    def __init__(self, child, count):
        self.child = child
        self.count = count
        self.schema = child.schema
        self.children = (child,)
        self._emitted = 0
        self._child_closed = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.child.open()
        self._emitted = 0
        self._child_closed = False

    def next(self):
        if self._emitted >= self.count:
            self._close_child()
            return None
        row = self.child.next()
        if row is None:
            return None
        self._emitted += 1
        if self._emitted >= self.count:
            self._close_child()
        return row

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        remaining = self.count - self._emitted
        if remaining <= 0:
            self._close_child()
            return None
        batch = self.child.next_batch(min(limit, remaining))
        if batch is None:
            return None
        if len(batch) > remaining:  # defensive: child over-produced
            batch = batch.narrow(range(remaining))
        self._emitted += len(batch)
        if self._emitted >= self.count:
            self._close_child()
        return batch

    def _close_child(self):
        if not self._child_closed:
            self._child_closed = True
            self.child.close()

    def close(self):
        self._close_child()

    def label(self):
        return "Limit: {}".format(self.count)
