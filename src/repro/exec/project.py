"""Projection (with computed expressions)."""

from repro.exec.operator import Operator
from repro.relational.expr import ColumnRef


class Project(Operator):
    """Evaluate one output expression per result column.

    A bare column reference is copied *raw* — placeholders pass through,
    since moving a value does not depend on it.  Computed expressions
    (arithmetic etc.) genuinely depend on their inputs and therefore raise
    on placeholders; clash rule 2 (projection must not drop placeholder
    attributes) is enforced by the plan rewriter, not here.
    """

    def __init__(self, child, expressions, schema):
        assert len(expressions) == len(schema)
        self.child = child
        self.expressions = list(expressions)
        self.schema = schema
        self.children = (child,)

    def open(self, bindings=None):
        self.child.open(bindings)

    def next(self):
        row = self.child.next()
        if row is None:
            return None
        return tuple(
            expr.raw(row) if isinstance(expr, ColumnRef) else expr.eval(row)
            for expr in self.expressions
        )

    def close(self):
        self.child.close()

    def label(self):
        rendered = ", ".join(
            expr.sql(self.child.schema) for expr in self.expressions
        )
        return "Project: {}".format(rendered)
