"""Projection (with computed expressions)."""

from array import array

from repro.exec.operator import Operator
from repro.relational.batch import ColumnBatch, RowBatch, type_column
from repro.relational.expr import (
    ColumnRef,
    compile_batch_projection,
    compile_column_projection,
)


class Project(Operator):
    """Evaluate one output expression per result column.

    A bare column reference is copied *raw* — placeholders pass through,
    since moving a value does not depend on it.  Computed expressions
    (arithmetic etc.) genuinely depend on their inputs and therefore raise
    on placeholders; clash rule 2 (projection must not drop placeholder
    attributes) is enforced by the plan rewriter, not here.

    Batch path: the output expressions are compiled once per ``open()``.
    In the columnar layout the projector is a column transformer
    (:func:`compile_column_projection`) — bare references pass whole
    column vectors through zero-copy, computed expressions run as
    kernels, and the outputs are re-typed against the projection schema.
    """

    def __init__(self, child, expressions, schema):
        assert len(expressions) == len(schema)
        self.child = child
        self.expressions = list(expressions)
        self.schema = schema
        self.children = (child,)
        self._batch_project = None
        self._column_project = None

    def open(self, bindings=None):
        self.child.open(bindings)
        if self.batch_layout == "columnar":
            self._column_project = compile_column_projection(self.expressions)
        else:
            self._batch_project = compile_batch_projection(self.expressions)

    def next(self):
        row = self.child.next()
        if row is None:
            return None
        return tuple(
            expr.raw(row) if isinstance(expr, ColumnRef) else expr.eval(row)
            for expr in self.expressions
        )

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        if self.batch_layout == "columnar":
            project = self._column_project
            if project is None:
                project = compile_column_projection(self.expressions)
                self._column_project = project
            batch = self.child.next_batch(limit)
            if batch is None:
                return None
            columns = [
                col if isinstance(col, array) else type_column(col, spec.type)
                for col, spec in zip(project(batch), self.schema)
            ]
            return ColumnBatch.from_columns(self.schema, columns, len(batch))
        project = self._batch_project
        if project is None:
            project = compile_batch_projection(self.expressions)
            self._batch_project = project
        batch = self.child.next_batch(limit)
        if batch is None:
            return None
        return RowBatch(self.schema, project(batch.to_rows()))

    def close(self):
        self.child.close()
        self._batch_project = None
        self._column_project = None

    def label(self):
        rendered = ", ".join(
            expr.sql(self.child.schema) for expr in self.expressions
        )
        return "Project: {}".format(rendered)
