"""Join operators: nested-loop join, cross product, and the dependent join.

The paper's host system offers only nested-loop joins; the dependent join
is the nested-loop variant whose inner side requires bindings from the
current outer tuple (it feeds the virtual tables' input columns).

In the columnar layout, :class:`NestedLoopJoin` upgrades the common
``col = col`` equi-join shape to a hash join: the inner side is
materialized once into a key table and each outer batch probes it by
column gather, replacing the outer×inner predicate evaluations with one
dict lookup per outer row.  The upgrade is strictly an execution
strategy — any input that could make the nested-loop schedule raise or
NULL differently (placeholder keys, mixed key types) demotes to an exact
materialized nested loop, and the row layout keeps the original
cross-product-plus-filter pipeline.
"""

from array import array

from repro.exec.operator import Operator
from repro.relational.expr import (
    Comparison,
    compile_batch_predicate,
    compile_scalar_eval,
)
from repro.relational.placeholder import Placeholder, require_concrete
from repro.util.errors import ExecutionError, TypeMismatchError


class CrossProduct(Operator):
    """Nested-loop cross product (inner side re-opened per outer tuple)."""

    def __init__(self, left, right):
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("CrossProduct.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                self.right.open()
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def next_batch(self, max_rows=None):
        if not self._opened:
            raise ExecutionError("CrossProduct.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        out = []
        while len(out) < limit:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    break
                self.right.open()
            batch = self.right.next_batch(limit - len(out))
            if batch is None:
                self.right.close()
                self._outer_row = None
                continue
            outer = self._outer_row
            out.extend(outer + inner for inner in batch)
        if not out:
            return None
        return self.make_batch(out)

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        return "Cross-Product"


class NestedLoopJoin(Operator):
    """Cross product plus a join predicate evaluated per combined row."""

    def __init__(self, left, right, predicate):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._product = None
        self._batch_predicate = None
        self._hashing = False
        self._inner_rows = None
        self._table = None
        self._inner_str = None
        self._first_inner_key = None
        self._fallback_scalar = None
        self._pending = []
        self._pending_pos = 0
        self._drain_rows = None
        self._drain_pos = 0

    def _equijoin_split(self):
        """``(outer index, inner-local index, outer is lhs)`` or ``None``.

        The hash upgrade applies only to ``col = col`` predicates whose
        two references land on opposite sides of the join.
        """
        predicate = self.predicate
        if not (isinstance(predicate, Comparison) and predicate.is_equijoin()):
            return None
        split = len(self.left.schema)
        li, ri = predicate.left.index, predicate.right.index
        if li < split <= ri:
            return li, ri - split, True
        if ri < split <= li:
            return ri, li - split, False
        return None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self._reset_hash_state()
        split = self._equijoin_split() if self.batch_layout == "columnar" else None
        if split is not None:
            self._hashing = True
            self._outer_key, self._inner_key, self._outer_is_lhs = split
            self._outer_context = (
                self.predicate.left if self._outer_is_lhs else self.predicate.right
            ).sql()
            self.left.open()
            return
        # Built per open() so plan rewrites that swap children stay honest.
        self._product = CrossProduct(self.left, self.right)
        self._product.batch_size = self.batch_size
        self._product.batch_layout = self.batch_layout
        self._product.open()
        self._batch_predicate = compile_batch_predicate(self.predicate)

    def _reset_hash_state(self):
        self._hashing = False
        self._inner_rows = None
        self._table = None
        self._inner_str = None
        self._first_inner_key = None
        self._fallback_scalar = None
        self._pending = []
        self._pending_pos = 0
        self._drain_rows = None
        self._drain_pos = 0

    # -- hash strategy --------------------------------------------------------

    def _build_inner(self):
        """Materialize the inner side once and index it by join key.

        The nested-loop schedule would re-open the (deterministic, local)
        inner subtree per outer row; one scan produces the same rows.
        Keys must be uniformly clean — concrete, non-NULL, and all of one
        str-ness — for dict equality to mirror the comparison exactly;
        any surprise demotes to the materialized nested loop, whose
        per-combined-row evaluation is the original semantics verbatim.
        """
        rows = []
        self.right.open()
        try:
            while True:
                batch = self.right.next_batch(self.batch_size)
                if batch is None:
                    break
                rows.extend(batch.to_rows())
        finally:
            self.right.close()
        self._inner_rows = rows
        if not rows:
            self._table = {}
            return
        key_index = self._inner_key
        first = rows[0][key_index]
        if isinstance(first, Placeholder):
            self._fallback_scalar = compile_scalar_eval(self.predicate)
            return
        inner_str = isinstance(first, str)
        table = {}
        for position, row in enumerate(rows):
            key = row[key_index]
            if (
                key is None
                or isinstance(key, Placeholder)
                or isinstance(key, str) != inner_str
            ):
                self._fallback_scalar = compile_scalar_eval(self.predicate)
                return
            table.setdefault(key, []).append(position)
        self._table = table
        self._inner_str = inner_str
        self._first_inner_key = first

    def _probe(self, left_batch):
        """All surviving combined rows for one outer batch, in order."""
        inner_rows = self._inner_rows
        out = []
        if self._table is None:
            # Demoted: exact per-combined-row evaluation over the
            # materialized inner (outer-major, inner scan order).
            scalar = self._fallback_scalar
            append = out.append
            for outer in left_batch.to_rows():
                for inner in inner_rows:
                    row = outer + inner
                    if scalar(row) is True:
                        append(row)
            return out
        if not inner_rows:
            # Empty inner: the nested loop never evaluates the predicate,
            # so even placeholder/mistyped outer keys must not raise.
            return out
        keys = left_batch.column(self._outer_key)
        get = self._table.get
        append = out.append
        if self._inner_str is False and isinstance(keys, array):
            # Typed outer column + numeric inner keys: nothing can raise
            # or be NULL, probe straight from the array.
            outer_rows = left_batch.to_rows()
            for i, key in enumerate(keys):
                matches = get(key)
                if matches:
                    outer = outer_rows[i]
                    for position in matches:
                        append(outer + inner_rows[position])
            return out
        inner_str = self._inner_str
        outer_rows = left_batch.to_rows()
        for i, key in enumerate(keys):
            if isinstance(key, Placeholder):
                require_concrete(key, context=self._outer_context)
            if key is None:
                continue
            if isinstance(key, str) != inner_str:
                # The nested loop raises at this outer row's first
                # combined evaluation; mirror its operand order.
                lhs, rhs = (
                    (key, self._first_inner_key)
                    if self._outer_is_lhs
                    else (self._first_inner_key, key)
                )
                raise TypeMismatchError(
                    "cannot compare {!r} with {!r}".format(lhs, rhs)
                )
            matches = get(key)
            if matches:
                outer = outer_rows[i]
                for position in matches:
                    append(outer + inner_rows[position])
        return out

    def _next_batch_hash(self, limit):
        while True:
            pending = self._pending
            if self._pending_pos < len(pending):
                chunk = pending[self._pending_pos : self._pending_pos + limit]
                self._pending_pos += len(chunk)
                if self._pending_pos >= len(pending):
                    self._pending = []
                    self._pending_pos = 0
                return self.make_batch(chunk)
            left_batch = self.left.next_batch(self.batch_size)
            if left_batch is None:
                return None
            if self._inner_rows is None:
                # Lazily, only once the outer side proved non-empty: an
                # empty outer must leave the inner subtree unopened,
                # exactly like the nested-loop schedule.
                self._build_inner()
            out = self._probe(left_batch)
            if out:
                self._pending = out
                self._pending_pos = 0

    # -- protocol -------------------------------------------------------------

    def next(self):
        if self._hashing:
            rows = self._drain_rows
            if rows is not None and self._drain_pos < len(rows):
                row = rows[self._drain_pos]
                self._drain_pos += 1
                return row
            batch = self._next_batch_hash(self.batch_size)
            if batch is None:
                self._drain_rows = None
                self._drain_pos = 0
                return None
            rows = batch.to_rows()
            self._drain_rows = rows
            self._drain_pos = 1
            return rows[0]
        while True:
            row = self._product.next()
            if row is None:
                return None
            if self.predicate.eval(row) is True:
                return row

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        if self._hashing:
            return self._next_batch_hash(limit)
        predicate = self._batch_predicate
        if predicate is None:
            predicate = compile_batch_predicate(self.predicate)
            self._batch_predicate = predicate
        while True:
            batch = self._product.next_batch(limit)
            if batch is None:
                return None
            selection = predicate(batch.to_rows())
            if not selection:
                continue  # no survivors in this chunk; keep pulling
            if len(selection) == len(batch):
                return batch
            return batch.narrow(selection)

    def close(self):
        if self._product is not None:
            self._product.close()
            self._product = None
        elif self._hashing:
            self.left.close()
        self._batch_predicate = None
        self._reset_hash_state()

    def label(self):
        return "Join: {}".format(self.predicate.sql(self.schema))


class DependentJoin(Operator):
    """Nested-loop join whose inner side needs outer-tuple bindings.

    ``binding_columns`` maps each inner input-parameter name (``"T1"``,
    ``"SearchExp"``, ``"Url"``, ...) to the outer-row index that supplies
    its value.  The equi-join predicate is implicit: the inner scan echoes
    its bound inputs as columns, so output rows already satisfy it.

    The operator is oblivious to asynchronous iteration, exactly as in the
    paper: it combines whatever (possibly placeholder-carrying) tuples the
    inner scan returns.

    Batch path: when the inner side supports batched parameterization
    (``open_batch(bindings_list)``, i.e. an :class:`AEVScan`, which emits
    exactly one tuple per binding), a whole outer batch is bound in one
    call — this is what registers a *batch* of external calls with the
    request pump in one go.  Otherwise the inner side may yield 0..n rows
    per outer tuple and we fall back to a per-outer-row nested loop that
    still pulls the inner side batch-at-a-time.
    """

    def __init__(self, left, right, binding_columns):
        self.left = left
        self.right = right
        self.binding_columns = dict(binding_columns)
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("DependentJoin.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                inner_bindings = {
                    param: self._outer_row[index]
                    for param, index in self.binding_columns.items()
                }
                self.right.open(inner_bindings)
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def next_batch(self, max_rows=None):
        if not self._opened:
            raise ExecutionError("DependentJoin.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        open_batch = getattr(self.right, "open_batch", None)
        if callable(open_batch) and self._outer_row is None:
            return self._next_batch_bound(open_batch, limit)
        return self._next_batch_looped(limit)

    def _next_batch_bound(self, open_batch, limit):
        """Fast path: bind one whole outer batch into the inner scan.

        The inner scan contract here is *exactly one row per binding* (an
        ``AEVScan`` emits a placeholder or resolved tuple per outer row),
        so output order is identical to the row-at-a-time schedule.
        """
        left_batch = self.left.next_batch(limit)
        if left_batch is None:
            return None
        outer_rows = left_batch.to_rows()
        items = tuple(self.binding_columns.items())
        bindings_list = [
            {param: row[index] for param, index in items} for row in outer_rows
        ]
        open_batch(bindings_list)
        try:
            inner_batch = self.right.next_batch(len(bindings_list))
            inner_rows = [] if inner_batch is None else inner_batch.to_rows()
            if len(inner_rows) != len(outer_rows):
                raise ExecutionError(
                    "dependent-join batch binding expected {} inner rows, "
                    "got {}".format(len(outer_rows), len(inner_rows))
                )
        finally:
            self.right.close()
        return self.make_batch(
            [outer + inner for outer, inner in zip(outer_rows, inner_rows)]
        )

    def _next_batch_looped(self, limit):
        """Fallback: per-outer-row rebinding, inner pulled batch-wise."""
        out = []
        while len(out) < limit:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    break
                inner_bindings = {
                    param: self._outer_row[index]
                    for param, index in self.binding_columns.items()
                }
                self.right.open(inner_bindings)
            batch = self.right.next_batch(limit - len(out))
            if batch is None:
                self.right.close()
                self._outer_row = None
                continue
            outer = self._outer_row
            out.extend(outer + inner for inner in batch)
        if not out:
            return None
        return self.make_batch(out)

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        pairs = ", ".join(
            "{} <- {}".format(param, self.left.schema[index].qualified_name())
            for param, index in sorted(self.binding_columns.items())
        )
        return "Dependent Join: {}".format(pairs)
