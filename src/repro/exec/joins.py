"""Join operators: nested-loop join, cross product, and the dependent join.

The paper's host system offers only nested-loop joins; the dependent join
is the nested-loop variant whose inner side requires bindings from the
current outer tuple (it feeds the virtual tables' input columns).
"""

from repro.exec.operator import Operator
from repro.util.errors import ExecutionError


class CrossProduct(Operator):
    """Nested-loop cross product (inner side re-opened per outer tuple)."""

    def __init__(self, left, right):
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("CrossProduct.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                self.right.open()
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        return "Cross-Product"


class NestedLoopJoin(Operator):
    """Cross product plus a join predicate evaluated per combined row."""

    def __init__(self, left, right, predicate):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._product = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        # Built per open() so plan rewrites that swap children stay honest.
        self._product = CrossProduct(self.left, self.right)
        self._product.open()

    def next(self):
        while True:
            row = self._product.next()
            if row is None:
                return None
            if self.predicate.eval(row) is True:
                return row

    def close(self):
        if self._product is not None:
            self._product.close()
            self._product = None

    def label(self):
        return "Join: {}".format(self.predicate.sql(self.schema))


class DependentJoin(Operator):
    """Nested-loop join whose inner side needs outer-tuple bindings.

    ``binding_columns`` maps each inner input-parameter name (``"T1"``,
    ``"SearchExp"``, ``"Url"``, ...) to the outer-row index that supplies
    its value.  The equi-join predicate is implicit: the inner scan echoes
    its bound inputs as columns, so output rows already satisfy it.

    The operator is oblivious to asynchronous iteration, exactly as in the
    paper: it combines whatever (possibly placeholder-carrying) tuples the
    inner scan returns.
    """

    def __init__(self, left, right, binding_columns):
        self.left = left
        self.right = right
        self.binding_columns = dict(binding_columns)
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("DependentJoin.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                inner_bindings = {
                    param: self._outer_row[index]
                    for param, index in self.binding_columns.items()
                }
                self.right.open(inner_bindings)
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        pairs = ", ".join(
            "{} <- {}".format(param, self.left.schema[index].qualified_name())
            for param, index in sorted(self.binding_columns.items())
        )
        return "Dependent Join: {}".format(pairs)
