"""Join operators: nested-loop join, cross product, and the dependent join.

The paper's host system offers only nested-loop joins; the dependent join
is the nested-loop variant whose inner side requires bindings from the
current outer tuple (it feeds the virtual tables' input columns).
"""

from repro.exec.operator import Operator
from repro.relational.batch import RowBatch
from repro.relational.expr import compile_batch_predicate
from repro.util.errors import ExecutionError


class CrossProduct(Operator):
    """Nested-loop cross product (inner side re-opened per outer tuple)."""

    def __init__(self, left, right):
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("CrossProduct.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                self.right.open()
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def next_batch(self, max_rows=None):
        if not self._opened:
            raise ExecutionError("CrossProduct.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        out = []
        while len(out) < limit:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    break
                self.right.open()
            batch = self.right.next_batch(limit - len(out))
            if batch is None:
                self.right.close()
                self._outer_row = None
                continue
            outer = self._outer_row
            out.extend(outer + inner for inner in batch)
        if not out:
            return None
        return RowBatch(self.schema, out)

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        return "Cross-Product"


class NestedLoopJoin(Operator):
    """Cross product plus a join predicate evaluated per combined row."""

    def __init__(self, left, right, predicate):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._product = None
        self._batch_predicate = None

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        # Built per open() so plan rewrites that swap children stay honest.
        self._product = CrossProduct(self.left, self.right)
        self._product.batch_size = self.batch_size
        self._product.open()
        self._batch_predicate = compile_batch_predicate(self.predicate)

    def next(self):
        while True:
            row = self._product.next()
            if row is None:
                return None
            if self.predicate.eval(row) is True:
                return row

    def next_batch(self, max_rows=None):
        limit = max_rows if max_rows is not None else self.batch_size
        predicate = self._batch_predicate
        if predicate is None:
            predicate = compile_batch_predicate(self.predicate)
            self._batch_predicate = predicate
        while True:
            batch = self._product.next_batch(limit)
            if batch is None:
                return None
            selection = predicate(batch.to_rows())
            if not selection:
                continue  # no survivors in this chunk; keep pulling
            if len(selection) == len(batch):
                return batch
            return batch.select(selection)

    def close(self):
        if self._product is not None:
            self._product.close()
            self._product = None
        self._batch_predicate = None

    def label(self):
        return "Join: {}".format(self.predicate.sql(self.schema))


class DependentJoin(Operator):
    """Nested-loop join whose inner side needs outer-tuple bindings.

    ``binding_columns`` maps each inner input-parameter name (``"T1"``,
    ``"SearchExp"``, ``"Url"``, ...) to the outer-row index that supplies
    its value.  The equi-join predicate is implicit: the inner scan echoes
    its bound inputs as columns, so output rows already satisfy it.

    The operator is oblivious to asynchronous iteration, exactly as in the
    paper: it combines whatever (possibly placeholder-carrying) tuples the
    inner scan returns.

    Batch path: when the inner side supports batched parameterization
    (``open_batch(bindings_list)``, i.e. an :class:`AEVScan`, which emits
    exactly one tuple per binding), a whole outer batch is bound in one
    call — this is what registers a *batch* of external calls with the
    request pump in one go.  Otherwise the inner side may yield 0..n rows
    per outer tuple and we fall back to a per-outer-row nested loop that
    still pulls the inner side batch-at-a-time.
    """

    def __init__(self, left, right, binding_columns):
        self.left = left
        self.right = right
        self.binding_columns = dict(binding_columns)
        self.schema = left.schema.concat(right.schema)
        self.children = (left, right)
        self._outer_row = None
        self._opened = False

    def open(self, bindings=None):
        self._reject_bindings(bindings)
        self.left.open()
        self._outer_row = None
        self._opened = True

    def next(self):
        if not self._opened:
            raise ExecutionError("DependentJoin.next() before open()")
        while True:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    return None
                inner_bindings = {
                    param: self._outer_row[index]
                    for param, index in self.binding_columns.items()
                }
                self.right.open(inner_bindings)
            inner = self.right.next()
            if inner is None:
                self.right.close()
                self._outer_row = None
                continue
            return self._outer_row + inner

    def next_batch(self, max_rows=None):
        if not self._opened:
            raise ExecutionError("DependentJoin.next_batch() before open()")
        limit = max_rows if max_rows is not None else self.batch_size
        open_batch = getattr(self.right, "open_batch", None)
        if callable(open_batch) and self._outer_row is None:
            return self._next_batch_bound(open_batch, limit)
        return self._next_batch_looped(limit)

    def _next_batch_bound(self, open_batch, limit):
        """Fast path: bind one whole outer batch into the inner scan.

        The inner scan contract here is *exactly one row per binding* (an
        ``AEVScan`` emits a placeholder or resolved tuple per outer row),
        so output order is identical to the row-at-a-time schedule.
        """
        left_batch = self.left.next_batch(limit)
        if left_batch is None:
            return None
        outer_rows = left_batch.to_rows()
        items = tuple(self.binding_columns.items())
        bindings_list = [
            {param: row[index] for param, index in items} for row in outer_rows
        ]
        open_batch(bindings_list)
        try:
            inner_batch = self.right.next_batch(len(bindings_list))
            inner_rows = [] if inner_batch is None else inner_batch.to_rows()
            if len(inner_rows) != len(outer_rows):
                raise ExecutionError(
                    "dependent-join batch binding expected {} inner rows, "
                    "got {}".format(len(outer_rows), len(inner_rows))
                )
        finally:
            self.right.close()
        return RowBatch(
            self.schema,
            [outer + inner for outer, inner in zip(outer_rows, inner_rows)],
        )

    def _next_batch_looped(self, limit):
        """Fallback: per-outer-row rebinding, inner pulled batch-wise."""
        out = []
        while len(out) < limit:
            if self._outer_row is None:
                self._outer_row = self.left.next()
                if self._outer_row is None:
                    break
                inner_bindings = {
                    param: self._outer_row[index]
                    for param, index in self.binding_columns.items()
                }
                self.right.open(inner_bindings)
            batch = self.right.next_batch(limit - len(out))
            if batch is None:
                self.right.close()
                self._outer_row = None
                continue
            outer = self._outer_row
            out.extend(outer + inner for inner in batch)
        if not out:
            return None
        return RowBatch(self.schema, out)

    def close(self):
        if self._opened:
            self.left.close()
            if self._outer_row is not None:
                self.right.close()
            self._outer_row = None
            self._opened = False

    def label(self):
        pairs = ", ".join(
            "{} <- {}".format(param, self.left.schema[index].qualified_name())
            for param, index in sorted(self.binding_columns.items())
        )
        return "Dependent Join: {}".format(pairs)
