"""Iterator-based query execution (Graefe-style Open/GetNext/Close).

Every operator implements ``open()`` / ``next()`` / ``close()`` and carries
its output :class:`~repro.relational.schema.Schema`.  Placeholder values
flow through "oblivious" operators untouched; operators that *depend on*
attribute values (filters, sorts, aggregates) evaluate expressions that
raise :class:`~repro.util.errors.PlaceholderError` on unresolved
placeholders, which turns any ReqSync-placement bug into a loud failure.

Since the vectorization refactor every operator additionally speaks the
batch protocol — ``next_batch(max_rows)`` returning
:class:`~repro.relational.batch.RowBatch` or
:class:`~repro.relational.batch.ColumnBatch` chunks (per the stamped
``batch_layout``) — over the same ``open``/``close`` lifecycle; see
:mod:`repro.exec.operator` for the dual-protocol contract and the
exact-compatibility shims.
"""

from repro.exec.operator import (
    BatchOperator,
    Operator,
    collect,
    collect_batches,
    execute,
    execute_batches,
    open_plan,
    set_batch_layout,
    set_batch_size,
)
from repro.relational.batch import ColumnBatch, RowBatch
from repro.exec.scans import RowsScan, TableScan
from repro.exec.exchange import Exchange, MergeExchange
from repro.exec.indexscan import IndexScan
from repro.exec.filter import Filter
from repro.exec.project import Project
from repro.exec.joins import CrossProduct, DependentJoin, NestedLoopJoin
from repro.exec.sort import Sort
from repro.exec.distinct import Distinct
from repro.exec.aggregate import Aggregate, AggregateSpec
from repro.exec.limit import Limit
from repro.exec.union import UnionAll

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BatchOperator",
    "ColumnBatch",
    "CrossProduct",
    "DependentJoin",
    "Distinct",
    "Exchange",
    "Filter",
    "IndexScan",
    "Limit",
    "MergeExchange",
    "NestedLoopJoin",
    "Operator",
    "Project",
    "RowBatch",
    "RowsScan",
    "Sort",
    "TableScan",
    "UnionAll",
    "collect",
    "collect_batches",
    "execute",
    "execute_batches",
    "open_plan",
    "set_batch_layout",
    "set_batch_size",
]
