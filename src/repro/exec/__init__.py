"""Iterator-based query execution (Graefe-style Open/GetNext/Close).

Every operator implements ``open()`` / ``next()`` / ``close()`` and carries
its output :class:`~repro.relational.schema.Schema`.  Placeholder values
flow through "oblivious" operators untouched; operators that *depend on*
attribute values (filters, sorts, aggregates) evaluate expressions that
raise :class:`~repro.util.errors.PlaceholderError` on unresolved
placeholders, which turns any ReqSync-placement bug into a loud failure.
"""

from repro.exec.operator import Operator, collect, execute
from repro.exec.scans import RowsScan, TableScan
from repro.exec.indexscan import IndexScan
from repro.exec.filter import Filter
from repro.exec.project import Project
from repro.exec.joins import CrossProduct, DependentJoin, NestedLoopJoin
from repro.exec.sort import Sort
from repro.exec.distinct import Distinct
from repro.exec.aggregate import Aggregate, AggregateSpec
from repro.exec.limit import Limit
from repro.exec.union import UnionAll

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "CrossProduct",
    "DependentJoin",
    "Distinct",
    "Filter",
    "IndexScan",
    "Limit",
    "NestedLoopJoin",
    "Operator",
    "Project",
    "RowsScan",
    "Sort",
    "TableScan",
    "UnionAll",
    "collect",
    "execute",
]
